// Package stats implements the statistical machinery behind the paper's
// similarity analysis (Figure 1): standardization, covariance, a Jacobi
// eigensolver for symmetric matrices, and principal component analysis —
// all from scratch on stdlib only.
package stats

import (
	"fmt"
	"math"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// StdDev returns the population standard deviation.
func StdDev(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(x)))
}

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("stats: matrix %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At reads element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set writes element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Standardize centers each column to zero mean and scales it to unit
// standard deviation (constant columns are centered only), returning a new
// matrix plus the per-column means and stds. PCA on heterogeneous units
// (percent, MB, Mbps...) requires this, as the paper's 8 characteristics
// span wildly different scales.
func Standardize(m *Matrix) (*Matrix, []float64, []float64) {
	out := NewMatrix(m.Rows, m.Cols)
	means := make([]float64, m.Cols)
	stds := make([]float64, m.Cols)
	col := make([]float64, m.Rows)
	for j := 0; j < m.Cols; j++ {
		for i := 0; i < m.Rows; i++ {
			col[i] = m.At(i, j)
		}
		means[j] = Mean(col)
		stds[j] = StdDev(col)
		for i := 0; i < m.Rows; i++ {
			v := m.At(i, j) - means[j]
			if stds[j] > 0 {
				v /= stds[j]
			}
			out.Set(i, j, v)
		}
	}
	return out, means, stds
}

// Covariance returns the column covariance matrix of m (rows are
// observations), using the population normalization 1/n.
func Covariance(m *Matrix) *Matrix {
	n := m.Rows
	c := NewMatrix(m.Cols, m.Cols)
	means := make([]float64, m.Cols)
	col := make([]float64, n)
	for j := 0; j < m.Cols; j++ {
		for i := 0; i < n; i++ {
			col[i] = m.At(i, j)
		}
		means[j] = Mean(col)
	}
	for a := 0; a < m.Cols; a++ {
		for b := a; b < m.Cols; b++ {
			var s float64
			for i := 0; i < n; i++ {
				s += (m.At(i, a) - means[a]) * (m.At(i, b) - means[b])
			}
			s /= float64(n)
			c.Set(a, b, s)
			c.Set(b, a, s)
		}
	}
	return c
}

// JacobiEigen diagonalizes a symmetric matrix by cyclic Jacobi rotations,
// returning eigenvalues (descending) and the matching orthonormal
// eigenvectors as matrix columns.
func JacobiEigen(sym *Matrix) ([]float64, *Matrix, error) {
	n := sym.Rows
	if sym.Cols != n {
		return nil, nil, fmt.Errorf("stats: eigen of non-square %dx%d", sym.Rows, sym.Cols)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if math.Abs(sym.At(i, j)-sym.At(j, i)) > 1e-9*(1+math.Abs(sym.At(i, j))) {
				return nil, nil, fmt.Errorf("stats: matrix not symmetric at (%d,%d)", i, j)
			}
		}
	}
	a := sym.Clone()
	v := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}

	offDiag := func() float64 {
		var s float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s += a.At(i, j) * a.At(i, j)
			}
		}
		return s
	}

	for sweep := 0; sweep < 100 && offDiag() > 1e-22; sweep++ {
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := a.At(p, p), a.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for k := 0; k < n; k++ {
					akp, akq := a.At(k, p), a.At(k, q)
					a.Set(k, p, c*akp-s*akq)
					a.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk, aqk := a.At(p, k), a.At(q, k)
					a.Set(p, k, c*apk-s*aqk)
					a.Set(q, k, s*apk+c*aqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}

	// Extract and sort descending by eigenvalue.
	type pair struct {
		val float64
		idx int
	}
	pairs := make([]pair, n)
	for i := range pairs {
		pairs[i] = pair{a.At(i, i), i}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if pairs[j].val > pairs[i].val {
				pairs[i], pairs[j] = pairs[j], pairs[i]
			}
		}
	}
	vals := make([]float64, n)
	vecs := NewMatrix(n, n)
	for c, p := range pairs {
		vals[c] = p.val
		for r := 0; r < n; r++ {
			vecs.Set(r, c, v.At(r, p.idx))
		}
	}
	return vals, vecs, nil
}

// Correlation returns the column correlation matrix of m (rows are
// observations): cov(a,b) / (std(a)*std(b)), with constant columns
// yielding zero correlation to everything (and 1 on the diagonal).
func Correlation(m *Matrix) *Matrix {
	cov := Covariance(m)
	out := NewMatrix(m.Cols, m.Cols)
	for a := 0; a < m.Cols; a++ {
		for b := 0; b < m.Cols; b++ {
			va, vb := cov.At(a, a), cov.At(b, b)
			if a == b {
				out.Set(a, b, 1)
				continue
			}
			if va <= 0 || vb <= 0 {
				continue
			}
			out.Set(a, b, cov.At(a, b)/math.Sqrt(va*vb))
		}
	}
	return out
}
