package train

import (
	"fmt"
	"math"
)

// Optimizer updates a parameter vector in place from a gradient vector.
// The layer types fuse momentum-SGD into their backward passes for speed;
// this interface exists for custom training loops and for modeling the
// optimizer variety of the MLPerf submissions (SGD+momentum for the
// vision models, Adam for the translation models and NCF).
type Optimizer interface {
	// Step applies one update; params and grads must have equal length.
	Step(params, grads []float64) error
	// Slots reports fp32 state words per parameter (the quantity the
	// simulator charges as optimizer memory).
	Slots() int
	// Name identifies the rule.
	Name() string
}

// SGD is plain gradient descent.
type SGD struct {
	LR float64
}

// Step applies params -= lr*grad.
func (s *SGD) Step(params, grads []float64) error {
	if len(params) != len(grads) {
		return fmt.Errorf("train: sgd: %d params, %d grads", len(params), len(grads))
	}
	for i, g := range grads {
		params[i] -= s.LR * g
	}
	return nil
}

// Slots is zero: SGD keeps no state.
func (s *SGD) Slots() int { return 0 }

// Name identifies the rule.
func (s *SGD) Name() string { return "sgd" }

// Momentum is SGD with heavy-ball momentum, the optimizer of the MLPerf
// vision submissions.
type Momentum struct {
	LR, Beta float64
	vel      []float64
}

// Step applies v = beta*v - lr*g; params += v.
func (m *Momentum) Step(params, grads []float64) error {
	if len(params) != len(grads) {
		return fmt.Errorf("train: momentum: %d params, %d grads", len(params), len(grads))
	}
	if m.vel == nil {
		m.vel = make([]float64, len(params))
	}
	if len(m.vel) != len(params) {
		return fmt.Errorf("train: momentum: state size changed")
	}
	for i, g := range grads {
		m.vel[i] = m.Beta*m.vel[i] - m.LR*g
		params[i] += m.vel[i]
	}
	return nil
}

// Slots is one fp32 word (the velocity).
func (m *Momentum) Slots() int { return 1 }

// Name identifies the rule.
func (m *Momentum) Name() string { return "momentum" }

// Adam is the adaptive optimizer of the translation and recommendation
// submissions (two state slots per parameter — the reason the simulator
// charges XFMR/GNMT/NCF OptimizerSlots=2).
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	m, v []float64
	t    int
}

// NewAdam returns Adam with the canonical defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies the bias-corrected Adam update.
func (a *Adam) Step(params, grads []float64) error {
	if len(params) != len(grads) {
		return fmt.Errorf("train: adam: %d params, %d grads", len(params), len(grads))
	}
	if a.m == nil {
		a.m = make([]float64, len(params))
		a.v = make([]float64, len(params))
	}
	if len(a.m) != len(params) {
		return fmt.Errorf("train: adam: state size changed")
	}
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, g := range grads {
		a.m[i] = a.Beta1*a.m[i] + (1-a.Beta1)*g
		a.v[i] = a.Beta2*a.v[i] + (1-a.Beta2)*g*g
		mHat := a.m[i] / c1
		vHat := a.v[i] / c2
		params[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
	}
	return nil
}

// Slots is two fp32 words (first and second moments).
func (a *Adam) Slots() int { return 2 }

// Name identifies the rule.
func (a *Adam) Name() string { return "adam" }
