package train

import (
	"math"
	"math/rand"
	"testing"

	"mlperf/internal/dataset"
)

func TestSoftmaxCEKnownValues(t *testing.T) {
	logits := []float64{0, 0}
	d := make([]float64, 2)
	loss := SoftmaxCE(logits, 0, d)
	if math.Abs(loss-math.Log(2)) > 1e-9 {
		t.Errorf("uniform CE = %v, want ln2", loss)
	}
	if math.Abs(d[0]-(-0.5)) > 1e-9 || math.Abs(d[1]-0.5) > 1e-9 {
		t.Errorf("grad = %v, want [-0.5, 0.5]", d)
	}
	// Gradients sum to zero for any logits.
	logits = []float64{3, -1, 0.5}
	d = make([]float64, 3)
	SoftmaxCE(logits, 2, d)
	var sum float64
	for _, v := range d {
		sum += v
	}
	if math.Abs(sum) > 1e-9 {
		t.Errorf("grad sum = %v, want 0", sum)
	}
}

func TestSoftmaxCENumericalStability(t *testing.T) {
	logits := []float64{1000, -1000}
	d := make([]float64, 2)
	loss := SoftmaxCE(logits, 0, d)
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Errorf("large-logit loss = %v", loss)
	}
	if loss > 1e-6 {
		t.Errorf("confident correct loss = %v, want ~0", loss)
	}
}

func TestClassifierGradientCheck(t *testing.T) {
	// Finite-difference check of the full network's input gradient via a
	// probe layer trick: check loss decreases under repeated steps on one
	// example (end-to-end sanity of all the chained backward passes).
	rng := rand.New(rand.NewSource(1))
	c, err := NewClassifier(rng, 6, []int{8}, 3, 0.05, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.2, 0.8, -0.3, 0.5, 0.1, -0.9}
	first := c.Step(x, 1)
	var last float64
	for i := 0; i < 60; i++ {
		last = c.Step(x, 1)
	}
	if last >= first {
		t.Errorf("loss did not decrease: %v -> %v", first, last)
	}
	if c.Predict(x) != 1 {
		t.Error("memorized example misclassified")
	}
}

func TestClassifierBadConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if _, err := NewClassifier(rng, 0, nil, 2, 0.1, 0); err == nil {
		t.Error("zero input dim accepted")
	}
	if _, err := NewClassifier(rng, 4, nil, 1, 0.1, 0); err == nil {
		t.Error("single class accepted")
	}
	if _, err := NewClassifier(rng, 4, []int{0}, 2, 0.1, 0); err == nil {
		t.Error("zero hidden width accepted")
	}
}

// TestClassifierTimeToAccuracy is the DAWNBench protocol executing for
// real: train to 90% test accuracy on the synthetic image task.
func TestClassifierTimeToAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs, ys := dataset.SyntheticImages(rng, 4, 60, 32, 0.25)
	// Shuffle and split 80/20.
	idx := rng.Perm(len(xs))
	var trainX, testX [][]float64
	var trainY, testY []int
	for i, j := range idx {
		if i%5 == 0 {
			testX = append(testX, xs[j])
			testY = append(testY, ys[j])
		} else {
			trainX = append(trainX, xs[j])
			trainY = append(trainY, ys[j])
		}
	}
	c, err := NewClassifier(rng, 32, []int{24}, 4, 0.03, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := TrainClassifierToAccuracy(c, trainX, trainY, testX, testY, 0.9, 25, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatalf("accuracy target not reached: %.3f after %d epochs (%v)",
			res.Accuracy, res.Epochs, res.AccuracyByEpoch)
	}
	if res.Elapsed <= 0 {
		t.Error("no time-to-accuracy recorded")
	}
}

func TestTrainClassifierBadSets(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c, _ := NewClassifier(rng, 4, nil, 2, 0.1, 0)
	if _, err := TrainClassifierToAccuracy(c, nil, nil, nil, nil, 0.9, 5, 1); err == nil {
		t.Error("empty training set accepted")
	}
	x := [][]float64{{1, 2, 3, 4}}
	if _, err := TrainClassifierToAccuracy(c, x, []int{0}, nil, nil, 0.9, 5, 1); err == nil {
		t.Error("empty test set accepted")
	}
	if _, err := TrainClassifierToAccuracy(c, x, []int{0, 1}, x, []int{0}, 0.9, 5, 1); err == nil {
		t.Error("mismatched labels accepted")
	}
}

func TestSyntheticImagesLearnable(t *testing.T) {
	// Low noise: nearest-template structure means even a linear model
	// separates classes far above chance.
	rng := rand.New(rand.NewSource(5))
	xs, ys := dataset.SyntheticImages(rng, 3, 40, 16, 0.1)
	c, err := NewClassifier(rng, 16, nil, 3, 0.05, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := TrainClassifierToAccuracy(c, xs, ys, xs, ys, 0.95, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0.9 {
		t.Errorf("linear model accuracy %.2f on easy task", res.Accuracy)
	}
}
