// Package train is a small but real training engine: embeddings and dense
// layers with hand-written backward passes, SGD with momentum, and binary
// cross-entropy — enough to actually train the NCF recommender on the
// synthetic MovieLens-like corpus (package dataset) to a hit-rate@10
// quality target. This demonstrates MLPerf's defining metric
// (time-to-quality) end-to-end on the host CPU, at a scale a laptop runs
// in seconds.
package train

import (
	"fmt"
	"math"
	"math/rand"
)

// Embedding is a trainable lookup table [rows, dim].
type Embedding struct {
	Rows, Dim int
	W         []float64
	vel       []float64
}

// NewEmbedding allocates an embedding with small random init.
func NewEmbedding(rng *rand.Rand, rows, dim int) *Embedding {
	e := &Embedding{Rows: rows, Dim: dim, W: make([]float64, rows*dim), vel: make([]float64, rows*dim)}
	scale := 1 / math.Sqrt(float64(dim))
	for i := range e.W {
		e.W[i] = rng.NormFloat64() * scale
	}
	return e
}

// Vec returns the row slice for index id.
func (e *Embedding) Vec(id int32) []float64 {
	return e.W[int(id)*e.Dim : int(id)*e.Dim+e.Dim]
}

// clipGrad bounds per-element gradients; embedding rows hit by every
// step otherwise blow up under momentum.
const clipGrad = 5.0

func clip(g float64) float64 {
	if g > clipGrad {
		return clipGrad
	}
	if g < -clipGrad {
		return -clipGrad
	}
	return g
}

// applyGrad performs a momentum-SGD update on one row.
func (e *Embedding) applyGrad(id int32, grad []float64, lr, momentum float64) {
	base := int(id) * e.Dim
	for i, g := range grad {
		g = clip(g)
		e.vel[base+i] = momentum*e.vel[base+i] - lr*g
		e.W[base+i] += e.vel[base+i]
	}
}

// Dense is a fully connected layer with ReLU (optional) and momentum SGD.
type Dense struct {
	In, Out int
	W       []float64 // [out][in]
	B       []float64
	ReLU    bool

	velW, velB []float64
}

// NewDense allocates a dense layer with He initialization.
func NewDense(rng *rand.Rand, in, out int, relu bool) *Dense {
	d := &Dense{
		In: in, Out: out, ReLU: relu,
		W: make([]float64, in*out), B: make([]float64, out),
		velW: make([]float64, in*out), velB: make([]float64, out),
	}
	scale := math.Sqrt(2 / float64(in))
	for i := range d.W {
		d.W[i] = rng.NormFloat64() * scale
	}
	return d
}

// Forward computes the layer output and stashes pre-activations for the
// backward pass into preact (len Out) if non-nil.
func (d *Dense) Forward(x, out, preact []float64) {
	for o := 0; o < d.Out; o++ {
		s := d.B[o]
		row := d.W[o*d.In : o*d.In+d.In]
		for i, v := range x {
			s += row[i] * v
		}
		if preact != nil {
			preact[o] = s
		}
		if d.ReLU && s < 0 {
			s = 0
		}
		out[o] = s
	}
}

// Backward consumes dOut (gradient w.r.t. output), the stashed input x and
// preactivations, updates the weights, and writes the gradient w.r.t. the
// input into dIn (if non-nil).
func (d *Dense) Backward(x, preact, dOut, dIn []float64, lr, momentum float64) {
	if dIn != nil {
		for i := range dIn {
			dIn[i] = 0
		}
	}
	for o := 0; o < d.Out; o++ {
		g := clip(dOut[o])
		if d.ReLU && preact[o] <= 0 {
			g = 0
		}
		if g == 0 {
			continue
		}
		row := d.W[o*d.In : o*d.In+d.In]
		if dIn != nil {
			for i := range dIn {
				dIn[i] += row[i] * g
			}
		}
		base := o * d.In
		for i, v := range x {
			d.velW[base+i] = momentum*d.velW[base+i] - lr*g*v
			row[i] += d.velW[base+i]
		}
		d.velB[o] = momentum*d.velB[o] - lr*g
		d.B[o] += d.velB[o]
	}
}

// sigmoid with clamping for numerical stability.
func sigmoid(x float64) float64 {
	if x > 30 {
		return 1
	}
	if x < -30 {
		return 0
	}
	return 1 / (1 + math.Exp(-x))
}

// BCELoss returns the binary cross-entropy and its gradient w.r.t. the
// logit (which is conveniently pred - label for sigmoid + BCE).
func BCELoss(logit float64, label float64) (loss, dLogit float64) {
	p := sigmoid(logit)
	eps := 1e-12
	loss = -(label*math.Log(p+eps) + (1-label)*math.Log(1-p+eps))
	return loss, p - label
}

// Config for an NCF training run.
type Config struct {
	Users, Items int
	// EmbedDim is the embedding width of both the GMF and MLP towers.
	EmbedDim int
	// Hidden lists the MLP tower widths.
	Hidden []int
	// Negatives per positive example.
	Negatives int
	LR        float64
	Momentum  float64
	Seed      int64
}

// DefaultConfig returns a small, fast-converging configuration.
func DefaultConfig(users, items int) Config {
	return Config{
		Users: users, Items: items,
		EmbedDim:  16,
		Hidden:    []int{32, 16},
		Negatives: 4,
		LR:        0.02,
		Momentum:  0.8,
		Seed:      1,
	}
}

// NCF is the runnable recommender: a GMF tower (element-wise product of
// embeddings) and an MLP tower over concatenated embeddings, fused by a
// final dense layer — the NeuMF architecture of the MLPerf benchmark.
type NCF struct {
	cfg Config
	rng *rand.Rand

	gmfUser, gmfItem *Embedding
	mlpUser, mlpItem *Embedding
	mlp              []*Dense
	out              *Dense

	// scratch buffers reused across steps
	bufs scratch
}

type scratch struct {
	mlpIn   []float64
	acts    [][]float64
	preacts [][]float64
	fuse    []float64
	dFuse   []float64
	dActs   [][]float64
	dMLPIn  []float64
	outPre  []float64
}

// NewNCF builds the model.
func NewNCF(cfg Config) (*NCF, error) {
	if cfg.Users <= 0 || cfg.Items <= 0 || cfg.EmbedDim <= 0 {
		return nil, fmt.Errorf("train: bad NCF config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &NCF{cfg: cfg, rng: rng}
	m.gmfUser = NewEmbedding(rng, cfg.Users, cfg.EmbedDim)
	m.gmfItem = NewEmbedding(rng, cfg.Items, cfg.EmbedDim)
	m.mlpUser = NewEmbedding(rng, cfg.Users, cfg.EmbedDim)
	m.mlpItem = NewEmbedding(rng, cfg.Items, cfg.EmbedDim)

	in := 2 * cfg.EmbedDim
	for _, h := range cfg.Hidden {
		m.mlp = append(m.mlp, NewDense(rng, in, h, true))
		in = h
	}
	m.out = NewDense(rng, cfg.EmbedDim+in, 1, false)

	m.bufs.mlpIn = make([]float64, 2*cfg.EmbedDim)
	for _, l := range m.mlp {
		m.bufs.acts = append(m.bufs.acts, make([]float64, l.Out))
		m.bufs.preacts = append(m.bufs.preacts, make([]float64, l.Out))
		m.bufs.dActs = append(m.bufs.dActs, make([]float64, l.Out))
	}
	m.bufs.fuse = make([]float64, cfg.EmbedDim+in)
	m.bufs.dFuse = make([]float64, cfg.EmbedDim+in)
	m.bufs.dMLPIn = make([]float64, 2*cfg.EmbedDim)
	m.bufs.outPre = make([]float64, 1)
	return m, nil
}

// Score computes the interaction logit for (user, item).
func (m *NCF) Score(user, item int32) float64 {
	logit, _ := m.forward(user, item)
	return logit
}

// forward runs the model, leaving intermediates in the scratch buffers.
func (m *NCF) forward(user, item int32) (float64, []float64) {
	d := m.cfg.EmbedDim
	gu, gi := m.gmfUser.Vec(user), m.gmfItem.Vec(item)
	mu, mi := m.mlpUser.Vec(user), m.mlpItem.Vec(item)

	copy(m.bufs.mlpIn[:d], mu)
	copy(m.bufs.mlpIn[d:], mi)

	x := m.bufs.mlpIn
	for i, l := range m.mlp {
		l.Forward(x, m.bufs.acts[i], m.bufs.preacts[i])
		x = m.bufs.acts[i]
	}
	// Fusion: [gmf element-product ; mlp output].
	for i := 0; i < d; i++ {
		m.bufs.fuse[i] = gu[i] * gi[i]
	}
	copy(m.bufs.fuse[d:], x)

	var logitBuf [1]float64
	m.out.Forward(m.bufs.fuse, logitBuf[:], m.bufs.outPre)
	return logitBuf[0], m.bufs.fuse
}

// Step trains on one (user, item, label) example, returning the loss.
func (m *NCF) Step(user, item int32, label float64) float64 {
	d := m.cfg.EmbedDim
	logit, fuse := m.forward(user, item)
	loss, dLogit := BCELoss(logit, label)

	// Output layer backward.
	dOut := [1]float64{dLogit}
	m.out.Backward(fuse, m.bufs.outPre, dOut[:], m.bufs.dFuse, m.cfg.LR, m.cfg.Momentum)

	// GMF branch: d fuse[i] = gu*gi.
	gu, gi := m.gmfUser.Vec(user), m.gmfItem.Vec(item)
	dgu := make([]float64, d)
	dgi := make([]float64, d)
	for i := 0; i < d; i++ {
		dgu[i] = m.bufs.dFuse[i] * gi[i]
		dgi[i] = m.bufs.dFuse[i] * gu[i]
	}
	m.gmfUser.applyGrad(user, dgu, m.cfg.LR, m.cfg.Momentum)
	m.gmfItem.applyGrad(item, dgi, m.cfg.LR, m.cfg.Momentum)

	// MLP branch backward through the tower.
	dx := m.bufs.dFuse[d:]
	for i := len(m.mlp) - 1; i >= 0; i-- {
		in := m.bufs.mlpIn
		if i > 0 {
			in = m.bufs.acts[i-1]
		}
		var dIn []float64
		if i > 0 {
			dIn = m.bufs.dActs[i-1]
		} else {
			dIn = m.bufs.dMLPIn
		}
		m.mlp[i].Backward(in, m.bufs.preacts[i], dx, dIn, m.cfg.LR, m.cfg.Momentum)
		dx = dIn
	}
	m.mlpUser.applyGrad(user, append([]float64(nil), m.bufs.dMLPIn[:d]...), m.cfg.LR, m.cfg.Momentum)
	m.mlpItem.applyGrad(item, append([]float64(nil), m.bufs.dMLPIn[d:]...), m.cfg.LR, m.cfg.Momentum)
	return loss
}
