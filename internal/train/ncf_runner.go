package train

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"mlperf/internal/dataset"
)

// RunResult reports a real time-to-quality training run.
type RunResult struct {
	// Epochs actually trained.
	Epochs int
	// HitRate is the final hit-rate@10 on the held-out items.
	HitRate float64
	// Reached reports whether the target was met.
	Reached bool
	// Elapsed is wall-clock training time — the MLPerf metric.
	Elapsed time.Duration
	// HitRateByEpoch traces convergence.
	HitRateByEpoch []float64
}

// TrainToTarget trains NCF on the split until hit-rate@10 reaches target
// or maxEpochs passes — the MLPerf "time to quality" protocol in miniature
// (Table II: NCF's target is hit rate @10 = 0.635 on MovieLens; here the
// corpus is the synthetic stand-in from package dataset).
func TrainToTarget(m *NCF, sp dataset.Split, target float64, maxEpochs int) (*RunResult, error) {
	if len(sp.Train) == 0 || len(sp.Test) == 0 {
		return nil, fmt.Errorf("train: empty split")
	}
	rng := rand.New(rand.NewSource(m.cfg.Seed + 1))
	seen := make(map[int64]bool, len(sp.Train))
	key := func(u, it int32) int64 { return int64(u)<<32 | int64(uint32(it)) }
	for _, r := range sp.Train {
		seen[key(r.User, r.Item)] = true
	}

	res := &RunResult{}
	start := time.Now()
	order := make([]int, len(sp.Train))
	for i := range order {
		order[i] = i
	}
	for epoch := 1; epoch <= maxEpochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, idx := range order {
			r := sp.Train[idx]
			m.Step(r.User, r.Item, 1)
			for n := 0; n < m.cfg.Negatives; n++ {
				neg := int32(rng.Intn(m.cfg.Items))
				if seen[key(r.User, neg)] {
					continue
				}
				m.Step(r.User, neg, 0)
			}
		}
		hr := HitRateAt10(m, sp, rng, 50)
		res.HitRateByEpoch = append(res.HitRateByEpoch, hr)
		res.Epochs = epoch
		res.HitRate = hr
		if hr >= target {
			res.Reached = true
			break
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// HitRateAt10 implements the NCF evaluation protocol: for each held-out
// (user, item), rank the true item against `candidates` random unseen
// items; a hit is the true item ranking in the top 10.
func HitRateAt10(m *NCF, sp dataset.Split, rng *rand.Rand, candidates int) float64 {
	if len(sp.Test) == 0 {
		return 0
	}
	hits := 0
	for _, t := range sp.Test {
		trueScore := m.Score(t.User, t.Item)
		if math.IsNaN(trueScore) || math.IsInf(trueScore, 0) {
			continue // a diverged model scores no hits
		}
		better := 0
		for c := 0; c < candidates; c++ {
			it := int32(rng.Intn(m.cfg.Items))
			if it == t.Item {
				continue
			}
			s := m.Score(t.User, it)
			// Ties count half: with saturated scores, ranking against an
			// equal-scoring candidate is a coin flip.
			if s > trueScore {
				better += 2
			} else if s == trueScore {
				better++
			}
		}
		if better < 20 {
			hits++
		}
	}
	return float64(hits) / float64(len(sp.Test))
}

// TopK returns the model's k highest-scoring items for a user, excluding
// items in `exclude` — the serving-side API of a recommender.
func TopK(m *NCF, user int32, k int, exclude map[int32]bool) []int32 {
	type scored struct {
		item  int32
		score float64
	}
	all := make([]scored, 0, m.cfg.Items)
	for it := 0; it < m.cfg.Items; it++ {
		if exclude[int32(it)] {
			continue
		}
		all = append(all, scored{int32(it), m.Score(user, int32(it))})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].score > all[j].score })
	if k > len(all) {
		k = len(all)
	}
	out := make([]int32, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].item
	}
	return out
}
