package train

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mlperf/internal/dataset"
)

func TestDenseForwardKnown(t *testing.T) {
	d := &Dense{In: 2, Out: 1, W: []float64{2, -1}, B: []float64{0.5},
		velW: make([]float64, 2), velB: make([]float64, 1)}
	out := make([]float64, 1)
	d.Forward([]float64{3, 4}, out, nil)
	if out[0] != 2*3-4+0.5 {
		t.Errorf("dense out = %v, want 2.5", out[0])
	}
	d.ReLU = true
	d.Forward([]float64{-3, 4}, out, nil)
	if out[0] != 0 {
		t.Errorf("relu dense out = %v, want 0", out[0])
	}
}

// TestDenseGradientCheck verifies the analytic backward pass against
// finite differences — the canonical correctness test of a training
// engine.
func TestDenseGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := NewDense(rng, 3, 2, false)
	x := []float64{0.3, -0.7, 1.1}
	// Loss: sum of squares of output.
	loss := func() float64 {
		out := make([]float64, 2)
		d.Forward(x, out, nil)
		return 0.5 * (out[0]*out[0] + out[1]*out[1])
	}
	// Analytic input gradient via Backward with lr=0 (no weight change).
	out := make([]float64, 2)
	pre := make([]float64, 2)
	d.Forward(x, out, pre)
	dIn := make([]float64, 3)
	d.Backward(x, pre, out, dIn, 0, 0)
	const h = 1e-6
	for i := range x {
		orig := x[i]
		x[i] = orig + h
		lp := loss()
		x[i] = orig - h
		lm := loss()
		x[i] = orig
		numeric := (lp - lm) / (2 * h)
		if math.Abs(numeric-dIn[i]) > 1e-4*(1+math.Abs(numeric)) {
			t.Errorf("dIn[%d] = %v, finite-diff %v", i, dIn[i], numeric)
		}
	}
}

func TestBCELoss(t *testing.T) {
	// Perfect confident prediction: tiny loss; wrong confident: large.
	l1, g1 := BCELoss(10, 1)
	if l1 > 0.01 {
		t.Errorf("confident correct loss = %v", l1)
	}
	if math.Abs(g1) > 0.01 {
		t.Errorf("confident correct grad = %v", g1)
	}
	l2, g2 := BCELoss(10, 0)
	if l2 < 5 {
		t.Errorf("confident wrong loss = %v", l2)
	}
	if g2 < 0.9 {
		t.Errorf("confident wrong grad = %v", g2)
	}
}

// Property: sigmoid+BCE gradient is always (p - label), bounded in [-1,1].
func TestBCEGradientBounds(t *testing.T) {
	f := func(logit float64, lab bool) bool {
		if math.IsNaN(logit) || math.IsInf(logit, 0) {
			return true
		}
		label := 0.0
		if lab {
			label = 1
		}
		_, g := BCELoss(logit, label)
		return g >= -1.0001 && g <= 1.0001 && !math.IsNaN(g)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStepReducesLoss(t *testing.T) {
	m, err := NewNCF(DefaultConfig(10, 20))
	if err != nil {
		t.Fatal(err)
	}
	first := m.Step(3, 7, 1)
	var last float64
	for i := 0; i < 50; i++ {
		last = m.Step(3, 7, 1)
	}
	if last >= first {
		t.Errorf("loss did not decrease: %v -> %v", first, last)
	}
}

func TestNCFBadConfig(t *testing.T) {
	if _, err := NewNCF(Config{}); err == nil {
		t.Error("zero config accepted")
	}
}

// TestTrainToTargetConverges is the real end-to-end run: synthetic
// structured ratings, leave-one-out eval, train until hit-rate@10 clears
// the target. This is MLPerf's time-to-quality metric executing for real.
func TestTrainToTargetConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ratings := dataset.SyntheticRatings(rng, 60, 120, 12, 6)
	sp := dataset.LeaveOneOut(ratings)
	m, err := NewNCF(DefaultConfig(60, 120))
	if err != nil {
		t.Fatal(err)
	}
	res, err := TrainToTarget(m, sp, 0.55, 30)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatalf("did not reach hit-rate 0.55 in %d epochs (final %.3f, trace %v)",
			res.Epochs, res.HitRate, res.HitRateByEpoch)
	}
	if res.Elapsed <= 0 {
		t.Error("no elapsed time recorded")
	}
}

func TestTrainedModelBeatsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ratings := dataset.SyntheticRatings(rng, 40, 100, 10, 6)
	sp := dataset.LeaveOneOut(ratings)
	m, err := NewNCF(DefaultConfig(40, 100))
	if err != nil {
		t.Fatal(err)
	}
	evalRNG := rand.New(rand.NewSource(99))
	before := HitRateAt10(m, sp, evalRNG, 60)
	if _, err := TrainToTarget(m, sp, 0.99, 10); err != nil {
		t.Fatal(err)
	}
	evalRNG = rand.New(rand.NewSource(99))
	after := HitRateAt10(m, sp, evalRNG, 60)
	if after <= before {
		t.Errorf("training did not improve hit rate: %.3f -> %.3f", before, after)
	}
}

func TestTrainToTargetEmptySplit(t *testing.T) {
	m, _ := NewNCF(DefaultConfig(5, 5))
	if _, err := TrainToTarget(m, dataset.Split{}, 0.5, 1); err == nil {
		t.Error("empty split accepted")
	}
}

func TestTopK(t *testing.T) {
	m, err := NewNCF(DefaultConfig(5, 30))
	if err != nil {
		t.Fatal(err)
	}
	got := TopK(m, 2, 5, map[int32]bool{0: true, 1: true})
	if len(got) != 5 {
		t.Fatalf("TopK returned %d items", len(got))
	}
	seen := map[int32]bool{}
	for _, it := range got {
		if it == 0 || it == 1 {
			t.Error("excluded item recommended")
		}
		if seen[it] {
			t.Error("duplicate recommendation")
		}
		seen[it] = true
	}
	// Scores must be in descending order.
	for i := 1; i < len(got); i++ {
		if m.Score(2, got[i-1]) < m.Score(2, got[i]) {
			t.Error("recommendations not sorted by score")
		}
	}
}

func TestDeterministicTraining(t *testing.T) {
	run := func() float64 {
		rng := rand.New(rand.NewSource(3))
		ratings := dataset.SyntheticRatings(rng, 20, 50, 8, 4)
		sp := dataset.LeaveOneOut(ratings)
		m, _ := NewNCF(DefaultConfig(20, 50))
		res, _ := TrainToTarget(m, sp, 0.99, 3)
		return res.HitRate
	}
	if run() != run() {
		t.Error("training is nondeterministic for a fixed seed")
	}
}
