package train

import (
	"math"
	"testing"
)

// quadratic is an ill-conditioned bowl: f(x) = 0.5*(100*x0^2 + x1^2).
func quadGrad(x []float64) []float64 {
	return []float64{100 * x[0], x[1]}
}

func quadVal(x []float64) float64 {
	return 0.5 * (100*x[0]*x[0] + x[1]*x[1])
}

func optimize(t *testing.T, opt Optimizer, steps int) []float64 {
	t.Helper()
	x := []float64{1, 1}
	for i := 0; i < steps; i++ {
		if err := opt.Step(x, quadGrad(x)); err != nil {
			t.Fatal(err)
		}
	}
	return x
}

func TestSGDConverges(t *testing.T) {
	x := optimize(t, &SGD{LR: 0.009}, 2000)
	if quadVal(x) > 1e-6 {
		t.Errorf("SGD final value %v", quadVal(x))
	}
}

func TestMomentumFasterThanSGDIllConditioned(t *testing.T) {
	// On an ill-conditioned bowl momentum makes markedly more progress in
	// the same step budget.
	const steps = 150
	xs := optimize(t, &SGD{LR: 0.009}, steps)
	xm := optimize(t, &Momentum{LR: 0.009, Beta: 0.9}, steps)
	if quadVal(xm) >= quadVal(xs) {
		t.Errorf("momentum %v not better than sgd %v", quadVal(xm), quadVal(xs))
	}
}

func TestAdamConverges(t *testing.T) {
	x := optimize(t, NewAdam(0.1), 1500)
	if quadVal(x) > 1e-4 {
		t.Errorf("Adam final value %v at %v", quadVal(x), x)
	}
}

func TestAdamBiasCorrection(t *testing.T) {
	// First step with gradient g moves by ~lr*sign(g) thanks to bias
	// correction, independent of gradient magnitude.
	a := NewAdam(0.1)
	x := []float64{5}
	if err := a.Step(x, []float64{1e-3}); err != nil {
		t.Fatal(err)
	}
	if math.Abs((5-x[0])-0.1) > 1e-3 {
		t.Errorf("first Adam step moved %v, want ~lr", 5-x[0])
	}
}

func TestOptimizerSlots(t *testing.T) {
	if (&SGD{}).Slots() != 0 || (&Momentum{}).Slots() != 1 || NewAdam(0.1).Slots() != 2 {
		t.Error("slot counts wrong (the simulator charges these as optimizer memory)")
	}
}

func TestOptimizerErrors(t *testing.T) {
	for _, opt := range []Optimizer{&SGD{LR: 0.1}, &Momentum{LR: 0.1, Beta: 0.9}, NewAdam(0.1)} {
		if err := opt.Step([]float64{1, 2}, []float64{1}); err == nil {
			t.Errorf("%s: mismatched lengths accepted", opt.Name())
		}
	}
	// State-size change after first step must error, not corrupt.
	m := &Momentum{LR: 0.1, Beta: 0.9}
	_ = m.Step([]float64{1}, []float64{1})
	if err := m.Step([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("momentum state-size change accepted")
	}
	a := NewAdam(0.1)
	_ = a.Step([]float64{1}, []float64{1})
	if err := a.Step([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("adam state-size change accepted")
	}
}
