package train

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Classifier is a small real MLP image classifier trained with softmax
// cross-entropy — the executable stand-in for DAWNBench's
// time-to-94%-accuracy protocol (Table II: Dawn_Res18_Py on CIFAR10), at
// a scale the host CPU trains in well under a second.
type Classifier struct {
	layers []*Dense
	out    *Dense
	lr     float64
	mom    float64

	// scratch
	acts    [][]float64
	preacts [][]float64
	dActs   [][]float64
	logits  []float64
	outPre  []float64
	dLogits []float64
}

// NewClassifier builds an MLP with the given hidden widths over inputDim
// features and `classes` outputs.
func NewClassifier(rng *rand.Rand, inputDim int, hidden []int, classes int, lr, momentum float64) (*Classifier, error) {
	if inputDim <= 0 || classes < 2 {
		return nil, fmt.Errorf("train: classifier needs inputs and >=2 classes")
	}
	c := &Classifier{lr: lr, mom: momentum}
	in := inputDim
	for _, h := range hidden {
		if h <= 0 {
			return nil, fmt.Errorf("train: non-positive hidden width %d", h)
		}
		c.layers = append(c.layers, NewDense(rng, in, h, true))
		c.acts = append(c.acts, make([]float64, h))
		c.preacts = append(c.preacts, make([]float64, h))
		c.dActs = append(c.dActs, make([]float64, h))
		in = h
	}
	c.out = NewDense(rng, in, classes, false)
	c.logits = make([]float64, classes)
	c.outPre = make([]float64, classes)
	c.dLogits = make([]float64, classes)
	return c, nil
}

// forward leaves the hidden activations in scratch and returns the logits.
func (c *Classifier) forward(x []float64) []float64 {
	cur := x
	for i, l := range c.layers {
		l.Forward(cur, c.acts[i], c.preacts[i])
		cur = c.acts[i]
	}
	c.out.Forward(cur, c.logits, c.outPre)
	return c.logits
}

// ClassifierLogits runs a forward pass and returns a copy of the raw
// logits — used by callers that need the full distribution (the minigo
// policy agent) rather than the argmax.
func ClassifierLogits(c *Classifier, x []float64) []float64 {
	out := c.forward(x)
	cp := make([]float64, len(out))
	copy(cp, out)
	return cp
}

// Predict returns the argmax class for an input.
func (c *Classifier) Predict(x []float64) int {
	logits := c.forward(x)
	best, bestV := 0, math.Inf(-1)
	for i, v := range logits {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// SoftmaxCE computes softmax cross-entropy loss and the logit gradient
// (softmax(p) - onehot(label)) in place into dLogits.
func SoftmaxCE(logits []float64, label int, dLogits []float64) float64 {
	maxV := math.Inf(-1)
	for _, v := range logits {
		if v > maxV {
			maxV = v
		}
	}
	var sum float64
	for i, v := range logits {
		e := math.Exp(v - maxV)
		dLogits[i] = e
		sum += e
	}
	loss := 0.0
	for i := range dLogits {
		p := dLogits[i] / sum
		dLogits[i] = p
		if i == label {
			loss = -math.Log(p + 1e-12)
			dLogits[i] = p - 1
		}
	}
	return loss
}

// Step trains on one example, returning the loss.
func (c *Classifier) Step(x []float64, label int) float64 {
	logits := c.forward(x)
	if label < 0 || label >= len(logits) {
		panic(fmt.Sprintf("train: label %d out of range", label))
	}
	loss := SoftmaxCE(logits, label, c.dLogits)

	last := x
	if n := len(c.layers); n > 0 {
		last = c.acts[n-1]
	}
	var dLast []float64
	if n := len(c.layers); n > 0 {
		dLast = c.dActs[n-1]
	}
	c.out.Backward(last, c.outPre, c.dLogits, dLast, c.lr, c.mom)

	dx := dLast
	for i := len(c.layers) - 1; i >= 0; i-- {
		in := x
		if i > 0 {
			in = c.acts[i-1]
		}
		var dIn []float64
		if i > 0 {
			dIn = c.dActs[i-1]
		}
		c.layers[i].Backward(in, c.preacts[i], dx, dIn, c.lr, c.mom)
		dx = dIn
	}
	return loss
}

// Accuracy evaluates top-1 accuracy over a labeled set.
func (c *Classifier) Accuracy(xs [][]float64, labels []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	correct := 0
	for i, x := range xs {
		if c.Predict(x) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(xs))
}

// ClassifierResult reports a real time-to-accuracy run.
type ClassifierResult struct {
	Epochs          int
	Accuracy        float64
	Reached         bool
	Elapsed         time.Duration
	AccuracyByEpoch []float64
}

// TrainClassifierToAccuracy runs the DAWNBench protocol: epochs of
// shuffled SGD until test accuracy clears the target.
func TrainClassifierToAccuracy(c *Classifier, trainX [][]float64, trainY []int,
	testX [][]float64, testY []int, target float64, maxEpochs int, seed int64) (*ClassifierResult, error) {
	if len(trainX) == 0 || len(trainX) != len(trainY) {
		return nil, fmt.Errorf("train: bad training set (%d x, %d y)", len(trainX), len(trainY))
	}
	if len(testX) == 0 || len(testX) != len(testY) {
		return nil, fmt.Errorf("train: bad test set")
	}
	rng := rand.New(rand.NewSource(seed))
	order := make([]int, len(trainX))
	for i := range order {
		order[i] = i
	}
	res := &ClassifierResult{}
	start := time.Now()
	for epoch := 1; epoch <= maxEpochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, idx := range order {
			c.Step(trainX[idx], trainY[idx])
		}
		acc := c.Accuracy(testX, testY)
		res.AccuracyByEpoch = append(res.AccuracyByEpoch, acc)
		res.Epochs = epoch
		res.Accuracy = acc
		if acc >= target {
			res.Reached = true
			break
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}
