package dataset

import (
	"math/rand"
	"testing"

	"mlperf/internal/units"
)

func TestFitsInHBM(t *testing.T) {
	// §V: MovieLens fits on-device; ImageNet cannot.
	hbm := 16 * units.GiB
	if !MovieLens20M.FitsInHBM(hbm) {
		t.Error("MovieLens-20M should fit in 16GB HBM")
	}
	if ImageNet.FitsInHBM(hbm) {
		t.Error("ImageNet must not fit in 16GB HBM")
	}
}

func TestCatalogSanity(t *testing.T) {
	all := []Dataset{ImageNet, COCO, COCO300, WMT17, MovieLens20M, CIFAR10, SQuAD}
	for _, d := range all {
		if d.TrainSamples <= 0 || d.SampleBytes <= 0 || d.DiskBytes <= 0 {
			t.Errorf("%s has non-positive sizes: %+v", d.Name, d)
		}
	}
	// The paper calls ImageNet "significantly bigger (around 300GB)".
	if ImageNet.DiskBytes != 300*units.GB {
		t.Errorf("ImageNet disk = %v", ImageNet.DiskBytes)
	}
}

func TestSyntheticRatingsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rs := SyntheticRatings(rng, 50, 200, 10, 8)
	if len(rs) != 500 {
		t.Fatalf("got %d ratings, want 500", len(rs))
	}
	perUser := map[int32]map[int32]bool{}
	for _, r := range rs {
		if r.User < 0 || r.User >= 50 || r.Item < 0 || r.Item >= 200 {
			t.Fatalf("rating out of range: %+v", r)
		}
		if perUser[r.User] == nil {
			perUser[r.User] = map[int32]bool{}
		}
		if perUser[r.User][r.Item] {
			t.Fatalf("duplicate interaction %+v", r)
		}
		perUser[r.User][r.Item] = true
	}
	for u, items := range perUser {
		if len(items) != 10 {
			t.Errorf("user %d has %d items, want 10", u, len(items))
		}
	}
}

func TestSyntheticRatingsDeterministic(t *testing.T) {
	a := SyntheticRatings(rand.New(rand.NewSource(7)), 20, 100, 5, 4)
	b := SyntheticRatings(rand.New(rand.NewSource(7)), 20, 100, 5, 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("synthetic corpus not deterministic for fixed seed")
		}
	}
}

func TestSyntheticRatingsPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic on zero users")
		}
	}()
	SyntheticRatings(rand.New(rand.NewSource(1)), 0, 10, 5, 4)
}

func TestLeaveOneOut(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rs := SyntheticRatings(rng, 30, 100, 8, 4)
	sp := LeaveOneOut(rs)
	if len(sp.Test) != 30 {
		t.Errorf("test set has %d entries, want one per user (30)", len(sp.Test))
	}
	if len(sp.Train)+len(sp.Test) != len(rs) {
		t.Error("split loses ratings")
	}
	seen := map[int32]bool{}
	for _, r := range sp.Test {
		if seen[r.User] {
			t.Errorf("user %d held out twice", r.User)
		}
		seen[r.User] = true
	}
}
