// Package dataset describes the training datasets of Table II and provides
// synthetic generators standing in for the real corpora (which we cannot
// ship): sized descriptors drive the simulator's epoch lengths and memory
// footprints, and the generators feed the real mini training engine.
package dataset

import (
	"fmt"
	"math/rand"

	"mlperf/internal/units"
)

// Dataset describes one training corpus.
type Dataset struct {
	Name string
	// TrainSamples is the number of training samples (images, sentence
	// pairs, ratings...).
	TrainSamples int
	// DiskBytes is the stored dataset size; ImageNet's ~300GB is what the
	// paper blames for the image-classification CPU overhead (§V-A).
	DiskBytes units.Bytes
	// SampleBytes is the decoded in-memory size of one sample as it is
	// shipped to the device.
	SampleBytes units.Bytes
	// EvalSamples is the validation-set size.
	EvalSamples int
}

// String renders a one-line description.
func (d Dataset) String() string {
	return fmt.Sprintf("%s (%d samples, %v)", d.Name, d.TrainSamples, d.DiskBytes)
}

// FitsInHBM reports whether the decoded dataset fits in a device memory of
// the given capacity — NCF's MovieLens does, ImageNet never does, which
// drives their opposite host-traffic profiles in Table V.
func (d Dataset) FitsInHBM(capacity units.Bytes) bool {
	return units.Bytes(d.TrainSamples)*d.SampleBytes <= capacity
}

// Catalog of the paper's datasets (Table II).
var (
	// ImageNet is ILSVRC-2012 classification: 1.28M images, ~300GB as the
	// paper quotes the on-disk footprint it coordinates through the CPU.
	ImageNet = Dataset{
		Name:         "ImageNet",
		TrainSamples: 1281167,
		DiskBytes:    300 * units.GB,
		SampleBytes:  3 * 224 * 224 * 4,
		EvalSamples:  50000,
	}

	// COCO2017 detection: 118k train images.
	COCO = Dataset{
		Name:         "Microsoft COCO",
		TrainSamples: 118287,
		DiskBytes:    19 * units.GB,
		SampleBytes:  3 * 800 * 1344 * 4,
		EvalSamples:  5000,
	}

	// COCO300 is the SSD view of COCO at 300x300 crops.
	COCO300 = Dataset{
		Name:         "Microsoft COCO (300px)",
		TrainSamples: 118287,
		DiskBytes:    19 * units.GB,
		SampleBytes:  3 * 300 * 300 * 4,
		EvalSamples:  5000,
	}

	// WMT17 English-German: ~4.5M sentence pairs.
	WMT17 = Dataset{
		Name:         "WMT17 En-De",
		TrainSamples: 4500000,
		DiskBytes:    1.4 * units.GB,
		SampleBytes:  4 * 54, // avg token ids per pair
		EvalSamples:  3004,
	}

	// MovieLens20M: 20M ratings over 138k users / 27k items. Its small
	// size caps NCF's usable global batch, the paper's explanation for
	// NCF's poor scaling (§IV-D).
	MovieLens20M = Dataset{
		Name:         "MovieLens 20-million",
		TrainSamples: 19861770, // ratings after MLPerf's test holdout
		DiskBytes:    190 * units.MB,
		SampleBytes:  8,
		EvalSamples:  138493,
	}

	// CIFAR10 for DAWNBench image classification.
	CIFAR10 = Dataset{
		Name:         "CIFAR10",
		TrainSamples: 50000,
		DiskBytes:    170 * units.MB,
		SampleBytes:  3 * 32 * 32 * 4,
		EvalSamples:  10000,
	}

	// SQuAD v1.1 for DrQA question answering.
	SQuAD = Dataset{
		Name:         "SQuAD",
		TrainSamples: 87599,
		DiskBytes:    35 * units.MB,
		SampleBytes:  4 * 430,
		EvalSamples:  10570,
	}
)

// Rating is one implicit-feedback interaction for the real NCF trainer.
type Rating struct {
	User, Item int32
}

// SyntheticRatings generates a MovieLens-like implicit-feedback corpus
// with learnable collaborative structure: users belong to `groups` taste
// communities, each preferring a disjoint slice of the catalog, with a
// small fraction of off-group noise interactions. A factorization model
// can discover the communities, which makes the hit-rate@10 quality
// target genuinely reachable (pure random interactions would pin hit-rate
// at chance and void the time-to-quality metric).
func SyntheticRatings(rng *rand.Rand, users, items, perUser, groups int) []Rating {
	if users <= 0 || items <= 0 || perUser <= 0 || groups <= 0 {
		panic("dataset: non-positive synthetic corpus dimension")
	}
	if groups > items {
		groups = items
	}
	if perUser > items {
		panic("dataset: perUser exceeds catalog size")
	}
	const noiseFrac = 0.1
	ratings := make([]Rating, 0, users*perUser)
	for u := 0; u < users; u++ {
		g := u % groups
		seen := make(map[int32]bool, perUser)
		for len(seen) < perUser {
			var it int32
			if rng.Float64() < noiseFrac {
				it = int32(rng.Intn(items))
			} else {
				// An in-group item: item ids congruent to g mod groups.
				slot := rng.Intn((items + groups - 1 - g) / groups)
				it = int32(slot*groups + g)
			}
			if int(it) >= items || seen[it] {
				continue
			}
			seen[it] = true
			ratings = append(ratings, Rating{User: int32(u), Item: it})
		}
	}
	return ratings
}

// SyntheticImages generates a CIFAR-like labeled image set: each class
// has a fixed random template and samples are template + Gaussian noise,
// so a small classifier can genuinely reach a high accuracy target (the
// DAWNBench time-to-accuracy protocol needs a learnable task, not noise).
// Returns per-sample feature vectors in [0,1]-ish range and labels.
func SyntheticImages(rng *rand.Rand, classes, perClass, dim int, noise float64) ([][]float64, []int) {
	if classes < 2 || perClass <= 0 || dim <= 0 {
		panic("dataset: bad synthetic image dimensions")
	}
	templates := make([][]float64, classes)
	for c := range templates {
		templates[c] = make([]float64, dim)
		for i := range templates[c] {
			templates[c][i] = rng.Float64()
		}
	}
	xs := make([][]float64, 0, classes*perClass)
	ys := make([]int, 0, classes*perClass)
	for c := 0; c < classes; c++ {
		for s := 0; s < perClass; s++ {
			x := make([]float64, dim)
			for i := range x {
				x[i] = templates[c][i] + noise*rng.NormFloat64()
			}
			xs = append(xs, x)
			ys = append(ys, c)
		}
	}
	return xs, ys
}

// Split holds a train/test division with one held-out item per user, the
// leave-one-out protocol NCF's hit-rate@10 metric uses.
type Split struct {
	Train []Rating
	Test  []Rating // exactly one per user that appears
}

// LeaveOneOut splits ratings: the last interaction of each user is held
// out for evaluation.
func LeaveOneOut(ratings []Rating) Split {
	lastIdx := map[int32]int{}
	for i, r := range ratings {
		lastIdx[r.User] = i
	}
	var sp Split
	for i, r := range ratings {
		if lastIdx[r.User] == i {
			sp.Test = append(sp.Test, r)
		} else {
			sp.Train = append(sp.Train, r)
		}
	}
	return sp
}
