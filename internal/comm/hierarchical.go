package comm

import (
	"fmt"
	"sort"

	"mlperf/internal/hw"
	"mlperf/internal/units"
)

// P2PGroups partitions GPUs into their GPUDirect peer-to-peer islands:
// within a group every pair has a CPU-free route (NVLink mesh or shared
// PCIe switch); between groups traffic must stage through host memory.
// On the DSS 8440 this yields the two 4-GPU switch groups.
func P2PGroups(topo *hw.Topology, gpus []string) [][]string {
	parent := map[string]string{}
	var find func(string) string
	find = func(x string) string {
		if parent[x] == x {
			return x
		}
		parent[x] = find(parent[x])
		return parent[x]
	}
	for _, g := range gpus {
		parent[g] = g
	}
	for i := range gpus {
		for j := i + 1; j < len(gpus); j++ {
			if topo.CanP2P(gpus[i], gpus[j]) {
				parent[find(gpus[i])] = find(gpus[j])
			}
		}
	}
	byRoot := map[string][]string{}
	for _, g := range gpus {
		r := find(g)
		byRoot[r] = append(byRoot[r], g)
	}
	var groups [][]string
	for _, members := range byRoot {
		sort.Strings(members)
		groups = append(groups, members)
	}
	sort.Slice(groups, func(a, b int) bool { return groups[a][0] < groups[b][0] })
	return groups
}

// HierarchicalAllReduce models the three-phase collective NCCL uses on
// multi-island machines: ring reduce-scatter within each P2P group, a
// cross-group exchange of the reduced shards over the host links, then an
// intra-group all-gather. Compared with one flat ring paced entirely by
// the slowest (host-staged) hop, only payload-sized traffic crosses the
// slow boundary.
func HierarchicalAllReduce(topo *hw.Topology, gpus []string, payload units.Bytes) (Result, error) {
	n := len(gpus)
	if n == 0 {
		return Result{}, fmt.Errorf("comm: all-reduce with no GPUs")
	}
	if n == 1 {
		return Result{Algorithm: "hierarchical", TrafficByKind: map[hw.LinkKind]units.Bytes{}}, nil
	}
	groups := P2PGroups(topo, gpus)
	if len(groups) == 1 {
		// Single island: plain ring is already hierarchicality-free.
		res, err := RingAllReduce(topo, gpus, payload)
		if err != nil {
			return Result{}, err
		}
		res.Algorithm = "hierarchical"
		return res, nil
	}

	res := Result{
		Algorithm:     "hierarchical",
		TrafficByKind: map[hw.LinkKind]units.Bytes{},
		BottleneckBW:  units.BytesPerSecond(1e30),
	}

	// Phase 1+3: intra-group reduce-scatter and all-gather, each moving
	// (k-1)/k * payload per GPU over the group's best ring. Groups run
	// concurrently; the slowest group paces the phase.
	var intraTime float64
	for _, grp := range groups {
		if len(grp) == 1 {
			continue
		}
		ring := BestRing(topo, grp)
		bw := ringBottleneck(topo, ring)
		if bw <= 0 {
			return Result{}, fmt.Errorf("comm: group %v not connected", grp)
		}
		if bw < res.BottleneckBW {
			res.BottleneckBW = bw
		}
		k := float64(len(grp))
		per := units.Bytes((k - 1) / k * float64(payload))
		t := 2 * (float64(per)/float64(bw) + float64(len(grp)-1)*ringStepOverhead)
		if t > intraTime {
			intraTime = t
		}
		for i := range ring {
			p, ok := topo.WidestPath(ring[i], ring[(i+1)%len(ring)])
			if !ok {
				return Result{}, fmt.Errorf("comm: no path in group %v", grp)
			}
			for _, kind := range p.Kinds {
				res.TrafficByKind[kind] += 2 * per
			}
		}
	}

	// Phase 2: a ring all-reduce across the group leaders carries the
	// reduced data over the slow boundary: 2(k-1)/k * payload per leader,
	// paced by the narrowest leader-pair route. With two islands that is
	// exactly one payload crossing per direction; with k singleton islands
	// it degenerates to the flat ring (no free lunch).
	k := len(groups)
	crossShare := units.Bytes(2 * float64(k-1) / float64(k) * float64(payload))
	minCross := units.BytesPerSecond(1e30)
	for gi := range groups {
		leader := groups[gi][0]
		peer := groups[(gi+1)%k][0]
		bw := topo.GPUPairBandwidth(leader, peer)
		if bw <= 0 {
			return Result{}, fmt.Errorf("comm: groups %v and %v not connected", groups[gi], groups[(gi+1)%k])
		}
		if bw < minCross {
			minCross = bw
		}
		p, ok := topo.WidestPath(leader, peer)
		if ok {
			for _, kind := range p.Kinds {
				res.TrafficByKind[kind] += crossShare
			}
		}
	}
	if minCross < res.BottleneckBW {
		res.BottleneckBW = minCross
	}
	crossTime := float64(crossShare)/float64(minCross) + 2*float64(k-1)*ringStepOverhead

	res.Time = intraTime + crossTime
	res.PerGPUTraffic = units.Bytes(2 * float64(n-1) / float64(n) * float64(payload))
	return res, nil
}
