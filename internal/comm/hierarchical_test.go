package comm

import (
	"testing"

	"mlperf/internal/hw"
	"mlperf/internal/units"
)

func TestP2PGroupsDSS8440(t *testing.T) {
	s := hw.DSS8440()
	groups := P2PGroups(s.Topo, s.GPUIDs())
	if len(groups) != 2 {
		t.Fatalf("%d groups, want 2 switch islands", len(groups))
	}
	if len(groups[0]) != 4 || len(groups[1]) != 4 {
		t.Errorf("group sizes %d/%d, want 4/4", len(groups[0]), len(groups[1]))
	}
	if groups[0][0] != "gpu0" || groups[1][0] != "gpu4" {
		t.Errorf("groups = %v", groups)
	}
}

func TestP2PGroupsT640(t *testing.T) {
	// No P2P anywhere: every GPU is its own island.
	s := hw.T640()
	groups := P2PGroups(s.Topo, s.GPUIDs())
	if len(groups) != 4 {
		t.Errorf("%d groups, want 4 singletons", len(groups))
	}
}

func TestP2PGroupsNVLinkMesh(t *testing.T) {
	s := hw.C4140K()
	groups := P2PGroups(s.Topo, s.GPUIDs())
	if len(groups) != 1 || len(groups[0]) != 4 {
		t.Errorf("groups = %v, want one 4-GPU island", groups)
	}
}

func TestHierarchicalBeatsFlatRingAcrossIslands(t *testing.T) {
	// On the DSS 8440's 8 GPUs with a large payload, the flat ring is
	// paced end-to-end by the host-staged cross-socket hop; the
	// hierarchical schedule only sends the payload across it once.
	s := hw.DSS8440()
	payload := 800 * units.MB
	flat, err := RingAllReduce(s.Topo, s.Topo.GPUs(), payload)
	if err != nil {
		t.Fatal(err)
	}
	hier, err := HierarchicalAllReduce(s.Topo, s.Topo.GPUs(), payload)
	if err != nil {
		t.Fatal(err)
	}
	if hier.Time >= flat.Time {
		t.Errorf("hierarchical %.3fs not faster than flat ring %.3fs", hier.Time, flat.Time)
	}
}

func TestHierarchicalSingleIslandEqualsRing(t *testing.T) {
	s := hw.C4140K()
	payload := 100 * units.MB
	ring, err := RingAllReduce(s.Topo, s.GPUIDs(), payload)
	if err != nil {
		t.Fatal(err)
	}
	hier, err := HierarchicalAllReduce(s.Topo, s.GPUIDs(), payload)
	if err != nil {
		t.Fatal(err)
	}
	if hier.Time != ring.Time {
		t.Errorf("single-island hierarchical %.4fs != ring %.4fs", hier.Time, ring.Time)
	}
}

func TestHierarchicalDegenerateInputs(t *testing.T) {
	s := hw.DSS8440()
	if _, err := HierarchicalAllReduce(s.Topo, nil, units.MB); err == nil {
		t.Error("empty GPU list accepted")
	}
	res, err := HierarchicalAllReduce(s.Topo, []string{"gpu0"}, units.MB)
	if err != nil || res.Time != 0 {
		t.Errorf("single GPU should be free: %v %v", res, err)
	}
}

func TestHierarchicalTrafficSplit(t *testing.T) {
	// Cross-island traffic rides PCIe; intra-island traffic stays on the
	// switches (also PCIe on the DSS 8440) — UPI must carry only the
	// cross exchange.
	s := hw.DSS8440()
	payload := 100 * units.MB
	res, err := HierarchicalAllReduce(s.Topo, s.Topo.GPUs(), payload)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrafficByKind[hw.UPI] == 0 {
		t.Error("cross-island exchange must cross UPI")
	}
	// UPI carries ~one payload per direction pair, far less than the
	// intra-group PCIe total.
	if res.TrafficByKind[hw.UPI] >= res.TrafficByKind[hw.PCIe3] {
		t.Errorf("UPI %.0fMB >= PCIe %.0fMB; hierarchy should localize traffic",
			res.TrafficByKind[hw.UPI].MB(), res.TrafficByKind[hw.PCIe3].MB())
	}
}
