// Package comm provides analytic cost models for the collective operations
// data-parallel training uses — all-reduce above all — over the hardware
// topologies of package hw. It mirrors what NCCL does: search for a ring
// with the widest bottleneck link, prefer GPUDirect P2P routes (NVLink or
// a shared PCIe switch), and fall back to staging through host memory
// when no P2P route exists. The executable counterpart validating the
// algorithmic invariants lives in internal/kernels (RingAllReduce).
package comm

import (
	"fmt"
	"strings"

	"mlperf/internal/hw"
	"mlperf/internal/units"
)

// Result describes one collective operation's cost.
type Result struct {
	// Algorithm is the collective algorithm chosen ("ring", "tree", ...).
	Algorithm string
	// Time is the operation latency in seconds.
	Time float64
	// PerGPUTraffic is the payload each participant sends.
	PerGPUTraffic units.Bytes
	// TrafficByKind attributes the total wire traffic to link kinds;
	// Table V's PCIe and NVLink columns are built from this split.
	TrafficByKind map[hw.LinkKind]units.Bytes
	// BottleneckBW is the narrowest effective pair bandwidth used.
	BottleneckBW units.BytesPerSecond
	// Ring is the GPU ordering used (ring algorithms only).
	Ring []string
}

// ringChunkSteps is the per-step software overhead of a ring collective
// (kernel launch + protocol), in seconds.
const ringStepOverhead = 12e-6

// BestRing searches GPU orderings for the ring with the widest bottleneck
// pair bandwidth, fixing the first element (rotations are equivalent). For
// the ≤8-GPU systems of the paper an exhaustive permutation search is
// cheap and exact — but it dominates per-run setup when every simulated
// step asks for the same ring, so the answer is memoized on the topology
// per GPU set.
func BestRing(topo *hw.Topology, gpus []string) []string {
	if len(gpus) <= 2 {
		return append([]string(nil), gpus...)
	}
	ring := topo.Memo("comm.ring:"+strings.Join(gpus, ","), func() any {
		return bestRingSearch(topo, gpus)
	}).([]string)
	// Callers receive their own copy: Result.Ring is exported and must not
	// alias the cache.
	return append([]string(nil), ring...)
}

// bestRingSearch is the uncached exhaustive search behind BestRing.
func bestRingSearch(topo *hw.Topology, gpus []string) []string {
	// Precompute the pair-bandwidth matrix once; the permutation search
	// then runs on indices only.
	n := len(gpus)
	bw := make([][]units.BytesPerSecond, n)
	for i := range bw {
		bw[i] = make([]units.BytesPerSecond, n)
		for j := range bw[i] {
			if i != j {
				bw[i][j] = topo.GPUPairBandwidth(gpus[i], gpus[j])
			}
		}
	}
	bottleneck := func(order []int) units.BytesPerSecond {
		minBW := units.BytesPerSecond(1e30)
		for i := range order {
			b := bw[order[i]][order[(i+1)%n]]
			if b < minBW {
				minBW = b
			}
		}
		return minBW
	}

	best := make([]int, n)
	for i := range best {
		best[i] = i
	}
	bestBW := bottleneck(best)

	perm := make([]int, n)
	copy(perm, best)
	var recurse func(k int)
	recurse = func(k int) {
		if k == n {
			if b := bottleneck(perm); b > bestBW {
				bestBW = b
				copy(best, perm)
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			recurse(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	recurse(1) // fix perm[0]: rotations are equivalent
	out := make([]string, n)
	for i, idx := range best {
		out[i] = gpus[idx]
	}
	return out
}

// ringBottleneck returns the minimum pair bandwidth around a ring.
func ringBottleneck(topo *hw.Topology, ring []string) units.BytesPerSecond {
	minBW := units.BytesPerSecond(1e30)
	for i := range ring {
		next := ring[(i+1)%len(ring)]
		bw := topo.GPUPairBandwidth(ring[i], next)
		if bw < minBW {
			minBW = bw
		}
	}
	return minBW
}

// RingAllReduce models the bandwidth-optimal ring all-reduce of a payload
// across the given GPUs: each rank moves 2(n−1)/n · payload, paced by the
// ring's bottleneck link, plus 2(n−1) step overheads.
func RingAllReduce(topo *hw.Topology, gpus []string, payload units.Bytes) (Result, error) {
	n := len(gpus)
	if n == 0 {
		return Result{}, fmt.Errorf("comm: all-reduce with no GPUs")
	}
	if n == 1 {
		return Result{Algorithm: "ring", Ring: gpus, TrafficByKind: map[hw.LinkKind]units.Bytes{}}, nil
	}
	ring := BestRing(topo, gpus)
	bw := ringBottleneck(topo, ring)
	if bw <= 0 {
		return Result{}, fmt.Errorf("comm: GPUs not mutually reachable")
	}
	perGPU := units.Bytes(2 * float64(n-1) / float64(n) * float64(payload))
	res := Result{
		Algorithm:     "ring",
		Ring:          ring,
		PerGPUTraffic: perGPU,
		BottleneckBW:  bw,
		Time:          float64(perGPU)/float64(bw) + 2*float64(n-1)*ringStepOverhead,
		TrafficByKind: map[hw.LinkKind]units.Bytes{},
	}
	// Attribute each pair's traffic to the link kinds its path crosses.
	for i := range ring {
		next := ring[(i+1)%n]
		p, ok := topo.WidestPath(ring[i], next)
		if !ok {
			return Result{}, fmt.Errorf("comm: no path %s->%s", ring[i], next)
		}
		for _, k := range p.Kinds {
			res.TrafficByKind[k] += perGPU
		}
	}
	return res, nil
}

// TreeAllReduce models a binary-tree reduce+broadcast: latency-optimal for
// small payloads, moving ~2·payload per level over ceil(log2 n) levels.
func TreeAllReduce(topo *hw.Topology, gpus []string, payload units.Bytes) (Result, error) {
	n := len(gpus)
	if n == 0 {
		return Result{}, fmt.Errorf("comm: all-reduce with no GPUs")
	}
	if n == 1 {
		return Result{Algorithm: "tree", TrafficByKind: map[hw.LinkKind]units.Bytes{}}, nil
	}
	levels := 0
	for m := n; m > 1; m = (m + 1) / 2 {
		levels++
	}
	minBW := units.BytesPerSecond(1e30)
	for i := 1; i < n; i++ {
		parent := gpus[(i-1)/2]
		if bw := topo.GPUPairBandwidth(gpus[i], parent); bw < minBW {
			minBW = bw
		}
	}
	if minBW <= 0 {
		return Result{}, fmt.Errorf("comm: GPUs not mutually reachable")
	}
	res := Result{
		Algorithm:     "tree",
		PerGPUTraffic: 2 * payload,
		BottleneckBW:  minBW,
		Time:          2*float64(levels)*float64(payload)/float64(minBW) + 2*float64(levels)*ringStepOverhead,
		TrafficByKind: map[hw.LinkKind]units.Bytes{},
	}
	for i := 1; i < n; i++ {
		parent := gpus[(i-1)/2]
		p, ok := topo.WidestPath(gpus[i], parent)
		if !ok {
			return Result{}, fmt.Errorf("comm: no path %s->%s", gpus[i], parent)
		}
		for _, k := range p.Kinds {
			res.TrafficByKind[k] += 2 * payload
		}
	}
	return res, nil
}

// AllReduce picks the fastest algorithm for the payload, as NCCL's tuner
// does: trees win small messages (latency-bound), rings win large ones on
// a single island, and the hierarchical schedule wins when the GPUs span
// several P2P islands (it crosses the slow boundary once instead of
// pacing the whole ring by it).
func AllReduce(topo *hw.Topology, gpus []string, payload units.Bytes) (Result, error) {
	best, err := RingAllReduce(topo, gpus, payload)
	if err != nil {
		return Result{}, err
	}
	tree, err := TreeAllReduce(topo, gpus, payload)
	if err != nil {
		return Result{}, err
	}
	if tree.Time < best.Time {
		best = tree
	}
	hier, err := HierarchicalAllReduce(topo, gpus, payload)
	if err != nil {
		return Result{}, err
	}
	if hier.Time < best.Time {
		best = hier
	}
	return best, nil
}

// HostStagedAllReduce models a collective that copies every rank's payload
// to host memory, reduces there, and broadcasts the result back — what a
// framework without NCCL peer-to-peer (TensorFlow replicated variables in
// the paper's Res50_TF submission) does. All traffic rides the CPU-GPU
// links regardless of available NVLink.
func HostStagedAllReduce(topo *hw.Topology, gpus []string, payload units.Bytes) (Result, error) {
	n := len(gpus)
	if n == 0 {
		return Result{}, fmt.Errorf("comm: all-reduce with no GPUs")
	}
	if n == 1 {
		return Result{Algorithm: "host-staged", TrafficByKind: map[hw.LinkKind]units.Bytes{}}, nil
	}
	res := Result{
		Algorithm:     "host-staged",
		PerGPUTraffic: 2 * payload, // D2H then H2D
		TrafficByKind: map[hw.LinkKind]units.Bytes{},
		BottleneckBW:  units.BytesPerSecond(1e30),
	}
	// Each GPU's D2H and H2D cross its host path; transfers on distinct
	// links run concurrently, but links shared by several GPUs serialize.
	type egress struct{ a, b string }
	shares := map[egress]int{}
	paths := map[string]hw.Path{}
	cpus := topo.CPUs()
	if len(cpus) == 0 {
		return Result{}, fmt.Errorf("comm: topology has no CPU for host staging")
	}
	for _, gid := range gpus {
		var best hw.Path
		for _, c := range cpus {
			if p, ok := topo.WidestPath(c, gid); ok && p.Bottleneck > best.Bottleneck {
				best = p
			}
		}
		if len(best.Hops) == 0 {
			return Result{}, fmt.Errorf("comm: no host path to %s", gid)
		}
		paths[gid] = best
		shares[egress{best.Hops[0], best.Hops[1]}]++
	}
	var worst float64
	for _, gid := range gpus {
		p := paths[gid]
		bw := float64(p.Bottleneck)
		if k := shares[egress{p.Hops[0], p.Hops[1]}]; k > 1 {
			if s := float64(p.Bottleneck) / float64(k); s < bw {
				bw = s
			}
		}
		if units.BytesPerSecond(bw) < res.BottleneckBW {
			res.BottleneckBW = units.BytesPerSecond(bw)
		}
		t := 2 * float64(payload) / bw
		if t > worst {
			worst = t
		}
		for _, kind := range p.Kinds {
			res.TrafficByKind[kind] += 2 * payload
		}
	}
	res.Time = worst + 2*ringStepOverhead
	return res, nil
}

// ReduceScatter models the first half of a ring all-reduce: after n-1
// steps each rank owns the fully reduced 1/n shard, having moved
// (n-1)/n · payload.
func ReduceScatter(topo *hw.Topology, gpus []string, payload units.Bytes) (Result, error) {
	return halfRing(topo, gpus, payload, "reduce-scatter")
}

// AllGather models the second half: circulating the reduced shards back
// to every rank, also (n-1)/n · payload per rank.
func AllGather(topo *hw.Topology, gpus []string, payload units.Bytes) (Result, error) {
	return halfRing(topo, gpus, payload, "all-gather")
}

func halfRing(topo *hw.Topology, gpus []string, payload units.Bytes, name string) (Result, error) {
	n := len(gpus)
	if n == 0 {
		return Result{}, fmt.Errorf("comm: %s with no GPUs", name)
	}
	if n == 1 {
		return Result{Algorithm: name, TrafficByKind: map[hw.LinkKind]units.Bytes{}}, nil
	}
	ring := BestRing(topo, gpus)
	bw := ringBottleneck(topo, ring)
	if bw <= 0 {
		return Result{}, fmt.Errorf("comm: GPUs not mutually reachable")
	}
	perGPU := units.Bytes(float64(n-1) / float64(n) * float64(payload))
	res := Result{
		Algorithm:     name,
		Ring:          ring,
		PerGPUTraffic: perGPU,
		BottleneckBW:  bw,
		Time:          float64(perGPU)/float64(bw) + float64(n-1)*ringStepOverhead,
		TrafficByKind: map[hw.LinkKind]units.Bytes{},
	}
	for i := range ring {
		p, ok := topo.WidestPath(ring[i], ring[(i+1)%n])
		if !ok {
			return Result{}, fmt.Errorf("comm: no path %s->%s", ring[i], ring[(i+1)%n])
		}
		for _, k := range p.Kinds {
			res.TrafficByKind[k] += perGPU
		}
	}
	return res, nil
}

// Broadcast models a pipelined broadcast from gpus[0] along the best ring:
// payload crosses each hop once.
func Broadcast(topo *hw.Topology, gpus []string, payload units.Bytes) (Result, error) {
	n := len(gpus)
	if n == 0 {
		return Result{}, fmt.Errorf("comm: broadcast with no GPUs")
	}
	if n == 1 {
		return Result{Algorithm: "broadcast", TrafficByKind: map[hw.LinkKind]units.Bytes{}}, nil
	}
	ring := BestRing(topo, gpus)
	bw := ringBottleneck(topo, ring)
	if bw <= 0 {
		return Result{}, fmt.Errorf("comm: GPUs not mutually reachable")
	}
	res := Result{
		Algorithm:     "broadcast",
		Ring:          ring,
		PerGPUTraffic: payload,
		BottleneckBW:  bw,
		Time:          float64(payload)/float64(bw) + float64(n-1)*ringStepOverhead,
		TrafficByKind: map[hw.LinkKind]units.Bytes{},
	}
	for i := 0; i < n-1; i++ {
		p, ok := topo.WidestPath(ring[i], ring[i+1])
		if !ok {
			return Result{}, fmt.Errorf("comm: no path %s->%s", ring[i], ring[i+1])
		}
		for _, k := range p.Kinds {
			res.TrafficByKind[k] += payload
		}
	}
	return res, nil
}
