package comm

import (
	"math"
	"testing"

	"mlperf/internal/hw"
	"mlperf/internal/units"
)

func TestRingAllReduceTrafficFormula(t *testing.T) {
	s := hw.C4140K()
	payload := 100 * units.MB
	res, err := RingAllReduce(s.Topo, s.GPUIDs(), payload)
	if err != nil {
		t.Fatal(err)
	}
	// 2(n-1)/n * payload with n=4 -> 150MB per GPU.
	want := 150 * units.MB
	if math.Abs(float64(res.PerGPUTraffic-want)) > 1 {
		t.Errorf("per-GPU traffic = %v, want %v", res.PerGPUTraffic, want)
	}
	if res.Time <= 0 {
		t.Error("non-positive all-reduce time")
	}
}

func TestBestRingFindsWideNVLinkRing(t *testing.T) {
	// On the C4140 NVLink mesh the naive ring 0-1-2-3 bottlenecks on a
	// single-brick diagonal; the optimal ring uses only 2-brick pairs.
	s := hw.C4140K()
	ring := BestRing(s.Topo, s.GPUIDs())
	bw := ringBottleneck(s.Topo, ring)
	twoBricks := hw.NVLinkBricks(2).Effective()
	if bw < twoBricks-1 {
		t.Errorf("best ring bottleneck = %v, want the 2-brick %v", bw, twoBricks)
	}
}

func TestAllReduceFasterOnNVLink(t *testing.T) {
	// Figure 5's premise: the same collective is faster on NVLink systems
	// than on PCIe-switch systems, which beat through-CPU systems.
	payload := 100 * units.MB
	timeOn := func(s *hw.System) float64 {
		res, err := RingAllReduce(s.Topo, s.GPUIDs(), payload)
		if err != nil {
			t.Fatal(err)
		}
		return res.Time
	}
	nv := timeOn(hw.C4140K())
	sw := timeOn(hw.C4140B())
	cpu := timeOn(hw.T640())
	if !(nv < sw && sw < cpu) {
		t.Errorf("all-reduce time ordering violated: nvlink=%.4fs switch=%.4fs cpu=%.4fs", nv, sw, cpu)
	}
}

func TestTrafficAttributionByLinkKind(t *testing.T) {
	payload := 10 * units.MB
	// On the NVLink system, ring traffic flows over NVLink only.
	res, err := RingAllReduce(hw.C4140K().Topo, hw.C4140K().GPUIDs(), payload)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrafficByKind[hw.NVLink] == 0 {
		t.Error("NVLink system: expected NVLink traffic")
	}
	if res.TrafficByKind[hw.PCIe3] != 0 {
		t.Error("NVLink system: GPU-GPU ring should not touch PCIe")
	}
	// On the T640 the ring must cross PCIe and UPI, never NVLink.
	res, err = RingAllReduce(hw.T640().Topo, hw.T640().GPUIDs(), payload)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrafficByKind[hw.NVLink] != 0 {
		t.Error("T640: no NVLink exists")
	}
	if res.TrafficByKind[hw.PCIe3] == 0 || res.TrafficByKind[hw.UPI] == 0 {
		t.Errorf("T640: expected PCIe and UPI traffic, got %v", res.TrafficByKind)
	}
}

func TestSingleGPUNoop(t *testing.T) {
	s := hw.C4140K()
	for _, f := range []func(*hw.Topology, []string, units.Bytes) (Result, error){
		RingAllReduce, TreeAllReduce, AllReduce, Broadcast,
	} {
		res, err := f(s.Topo, []string{"gpu0"}, 100*units.MB)
		if err != nil {
			t.Fatal(err)
		}
		if res.Time != 0 || res.PerGPUTraffic != 0 {
			t.Errorf("single-GPU collective should be free, got %+v", res)
		}
	}
}

func TestEmptyGPUListErrors(t *testing.T) {
	s := hw.C4140K()
	if _, err := RingAllReduce(s.Topo, nil, units.MB); err == nil {
		t.Error("empty ring all-reduce must error")
	}
	if _, err := TreeAllReduce(s.Topo, nil, units.MB); err == nil {
		t.Error("empty tree all-reduce must error")
	}
	if _, err := Broadcast(s.Topo, nil, units.MB); err == nil {
		t.Error("empty broadcast must error")
	}
}

func TestAllReducePicksTreeForTinyPayloads(t *testing.T) {
	s := hw.DSS8440()
	small, err := AllReduce(s.Topo, s.Topo.GPUs(), 1*units.KB)
	if err != nil {
		t.Fatal(err)
	}
	large, err := AllReduce(s.Topo, s.Topo.GPUs(), 500*units.MB)
	if err != nil {
		t.Fatal(err)
	}
	if small.Algorithm != "tree" {
		t.Errorf("1KB all-reduce chose %s, want tree (latency-bound)", small.Algorithm)
	}
	// The DSS 8440 spans two P2P islands: for bandwidth-bound payloads the
	// hierarchical schedule must win over the flat ring.
	if large.Algorithm != "hierarchical" {
		t.Errorf("500MB all-reduce chose %s, want hierarchical (two switch islands)", large.Algorithm)
	}
	// On a single island the selection reduces to the plain ring.
	k := hw.C4140K()
	single, err := AllReduce(k.Topo, k.GPUIDs(), 500*units.MB)
	if err != nil {
		t.Fatal(err)
	}
	if single.Algorithm == "tree" {
		t.Errorf("single-island 500MB all-reduce chose tree")
	}
}

func TestAllReduceTimeMonotonicInPayload(t *testing.T) {
	s := hw.C4140B()
	prev := -1.0
	for _, mb := range []float64{1, 10, 100, 500} {
		res, err := RingAllReduce(s.Topo, s.GPUIDs(), units.Bytes(mb*1e6))
		if err != nil {
			t.Fatal(err)
		}
		if res.Time <= prev {
			t.Errorf("time not monotone at %vMB", mb)
		}
		prev = res.Time
	}
}

func TestBroadcastCheaperThanAllReduce(t *testing.T) {
	s := hw.C4140K()
	payload := 100 * units.MB
	b, err := Broadcast(s.Topo, s.GPUIDs(), payload)
	if err != nil {
		t.Fatal(err)
	}
	a, err := RingAllReduce(s.Topo, s.GPUIDs(), payload)
	if err != nil {
		t.Fatal(err)
	}
	if b.Time >= a.Time {
		t.Errorf("broadcast %.4fs should undercut all-reduce %.4fs", b.Time, a.Time)
	}
}

func TestReduceScatterPlusAllGatherEqualsAllReduce(t *testing.T) {
	// A ring all-reduce is exactly reduce-scatter followed by all-gather:
	// the per-GPU traffic must compose, and the times must sum (minus one
	// shared step-overhead accounting difference).
	s := hw.C4140K()
	payload := 200 * units.MB
	rs, err := ReduceScatter(s.Topo, s.GPUIDs(), payload)
	if err != nil {
		t.Fatal(err)
	}
	ag, err := AllGather(s.Topo, s.GPUIDs(), payload)
	if err != nil {
		t.Fatal(err)
	}
	ar, err := RingAllReduce(s.Topo, s.GPUIDs(), payload)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rs.PerGPUTraffic+ag.PerGPUTraffic, ar.PerGPUTraffic; got != want {
		t.Errorf("rs+ag traffic %v != allreduce %v", got, want)
	}
	sum := rs.Time + ag.Time
	if math.Abs(sum-ar.Time) > 1e-9 {
		t.Errorf("rs+ag time %.6f != allreduce %.6f", sum, ar.Time)
	}
}

func TestHalfRingSingleGPU(t *testing.T) {
	s := hw.C4140K()
	for _, f := range []func(*hw.Topology, []string, units.Bytes) (Result, error){ReduceScatter, AllGather} {
		res, err := f(s.Topo, []string{"gpu0"}, units.MB)
		if err != nil || res.Time != 0 {
			t.Errorf("single-GPU half-ring: %v %v", res, err)
		}
	}
	if _, err := ReduceScatter(s.Topo, nil, units.MB); err == nil {
		t.Error("empty reduce-scatter accepted")
	}
}
