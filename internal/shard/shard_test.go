package shard

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// digests fabricates n deterministic distinct keys.
func digests(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("digest-%04d", i)
	}
	return out
}

func TestRingDeterministicAndBalanced(t *testing.T) {
	keys := digests(2000)
	a := NewRing(4, 0)
	b := NewRing(4, 0)
	counts := make([]int, 4)
	for _, k := range keys {
		o := a.Owner(k)
		if o != b.Owner(k) {
			t.Fatalf("two equal rings disagree on %q", k)
		}
		counts[o]++
	}
	for s, c := range counts {
		if c == 0 {
			t.Errorf("shard %d received no keys: %v", s, counts)
		}
		if c > len(keys)*3/4 {
			t.Errorf("shard %d owns %d of %d keys — partition degenerate: %v", s, c, len(keys), counts)
		}
	}
	if a.Shards() != 4 {
		t.Errorf("Shards() = %d, want 4", a.Shards())
	}
}

// TestRingConsistency is the consistent-hashing property: growing the
// shard count remaps a minority of keys, not everything.
func TestRingConsistency(t *testing.T) {
	keys := digests(2000)
	four := NewRing(4, 0)
	five := NewRing(5, 0)
	moved := 0
	for _, k := range keys {
		if four.Owner(k) != five.Owner(k) {
			moved++
		}
	}
	// Theory says ~1/5 move; flag anything past half as mod-hashing in
	// disguise.
	if moved == 0 || moved > len(keys)/2 {
		t.Errorf("%d of %d keys moved going 4→5 shards, want a small nonzero fraction", moved, len(keys))
	}
}

func TestRunExecutesEveryItemOnce(t *testing.T) {
	const n = 200
	keys := digests(n)
	execs := make([]atomic.Int64, n)
	st := Run(context.Background(), n,
		func(i int) string { return keys[i] },
		func(i, home int) { execs[i].Add(1) },
		Options{Shards: 4, Workers: 8})

	var assigned, completed int64
	for s := 0; s < st.Shards; s++ {
		assigned += st.Assigned[s]
		completed += st.Completed[s]
	}
	if assigned != n || completed != n {
		t.Errorf("assigned %d / completed %d, want %d each (stats %+v)", assigned, completed, n, st)
	}
	for i := range execs {
		if execs[i].Load() < 1 {
			t.Errorf("item %d never executed", i)
		}
	}
}

// TestRunStealsFromOverloadedShard hashes every item onto one shard and
// proves the other workers steal rather than idle.
func TestRunStealsFromOverloadedShard(t *testing.T) {
	const n = 64
	var execs atomic.Int64
	st := Run(context.Background(), n,
		func(int) string { return "everything-hashes-here" },
		func(i, home int) {
			execs.Add(1)
			time.Sleep(100 * time.Microsecond) // give thieves something to take
		},
		Options{Shards: 4, Workers: 4})

	var completed int64
	nonHome := int64(0)
	for s := 0; s < st.Shards; s++ {
		completed += st.Completed[s]
		if st.Assigned[s] == 0 {
			nonHome += st.Completed[s]
		}
	}
	if completed != n {
		t.Errorf("completed %d, want %d", completed, n)
	}
	if st.Steals == 0 || nonHome == 0 {
		t.Errorf("no stealing despite a fully skewed partition: %+v", st)
	}
}

// TestRunRedispatchesStraggler parks one item and proves an idle worker
// re-dispatches it instead of waiting, and that duplicate completions
// are still counted once.
func TestRunRedispatchesStraggler(t *testing.T) {
	const n = 6
	keys := digests(n)
	execs := make([]atomic.Int64, n)
	st := Run(context.Background(), n,
		func(i int) string { return keys[i] },
		func(i, home int) {
			execs[i].Add(1)
			if i == 0 {
				time.Sleep(30 * time.Millisecond)
			}
		},
		Options{Shards: 1, Workers: 4, MaxDuplicates: 2})

	var completed int64
	for s := 0; s < st.Shards; s++ {
		completed += st.Completed[s]
	}
	if completed != n {
		t.Errorf("completed %d, want %d — duplicates must count once", completed, n)
	}
	if st.Redispatches == 0 {
		t.Errorf("straggler was never re-dispatched: %+v", st)
	}
	if got := execs[0].Load(); got < 1 || got > 2 {
		t.Errorf("straggler executed %d times, want 1..MaxDuplicates", got)
	}
}

func TestRunCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var execs atomic.Int64
	keys := digests(50)
	done := make(chan Stats, 1)
	go func() {
		done <- Run(ctx, 50,
			func(i int) string { return keys[i] },
			func(i, home int) { execs.Add(1) },
			Options{Shards: 2, Workers: 4})
	}()
	select {
	case st := <-done:
		var completed int64
		for s := 0; s < st.Shards; s++ {
			completed += st.Completed[s]
		}
		if completed != execs.Load() {
			t.Errorf("completed %d but executed %d", completed, execs.Load())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run hung on a canceled context")
	}
}

func TestRunZeroItems(t *testing.T) {
	st := Run(context.Background(), 0, nil, nil, Options{Shards: 3})
	if st.Shards != 3 || st.Steals != 0 || st.Redispatches != 0 {
		t.Errorf("zero-item stats %+v", st)
	}
}
