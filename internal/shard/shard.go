// Package shard partitions a batch of content-addressed work items
// across N shard queues and executes them with work stealing and
// straggler re-dispatch. It is the scheduling layer under the sweep
// engine's sharded grid runs: items are assigned to shards by
// consistent hashing on their canonical digest — so the same cell lands
// on the same shard run after run, and growing the shard count remaps
// only ~1/N of the keys — while stealing and re-dispatch keep the whole
// pool busy when the static partition turns out to be unbalanced or one
// item straggles.
//
// The coordinator schedules; it does not interpret results. Callers
// own result storage and must make it idempotent (a re-dispatched item
// can execute twice), which the sweep engine gets for free from its
// singleflight memo cache plus a per-index sync.Once.
package shard

import (
	"context"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultReplicas is the virtual-node count per shard on the hash ring.
// More replicas smooth the partition at the cost of a bigger ring; 64
// keeps the expected imbalance under a few percent for paper-scale
// grids.
const DefaultReplicas = 64

// Ring is a consistent-hash ring mapping string keys (canonical
// digests) to shard indices. It is immutable after construction and
// safe for concurrent use.
type Ring struct {
	shards int
	points []ringPoint
}

type ringPoint struct {
	h     uint64
	shard int
}

// NewRing builds a ring of the given shard count with replicas virtual
// nodes per shard (<= 0 = DefaultReplicas). The ring is deterministic:
// equal (shards, replicas) always yield the identical mapping.
func NewRing(shards, replicas int) *Ring {
	if shards < 1 {
		shards = 1
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	r := &Ring{shards: shards, points: make([]ringPoint, 0, shards*replicas)}
	var label [32]byte
	for s := 0; s < shards; s++ {
		for v := 0; v < replicas; v++ {
			n := encodePoint(label[:0], s, v)
			r.points = append(r.points, ringPoint{h: hash64(n), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// encodePoint renders the virtual node label "shard:<s>:<v>".
func encodePoint(buf []byte, s, v int) []byte {
	buf = append(buf, "shard:"...)
	buf = appendInt(buf, s)
	buf = append(buf, ':')
	return appendInt(buf, v)
}

func appendInt(buf []byte, n int) []byte {
	if n == 0 {
		return append(buf, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for n > 0 {
		i--
		tmp[i] = byte('0' + n%10)
		n /= 10
	}
	return append(buf, tmp[i:]...)
}

// hash64 is FNV-1a, chosen for determinism across processes and builds
// (no seed, no map-iteration dependence).
func hash64(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// Shards returns the ring's shard count.
func (r *Ring) Shards() int { return r.shards }

// Owner maps a key to its shard: the first virtual node clockwise from
// the key's hash.
func (r *Ring) Owner(key string) int {
	h := hash64([]byte(key))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// Options tunes a coordinator run. The zero value means: 1 shard,
// one worker per shard, DefaultReplicas virtual nodes, at most one
// concurrent duplicate per item.
type Options struct {
	// Shards is the number of shard queues (< 1 = 1).
	Shards int
	// Workers is the total worker goroutine count across all shards
	// (< 1 = Shards). Worker w's home shard is w mod Shards.
	Workers int
	// Replicas is the virtual-node count per shard (<= 0 =
	// DefaultReplicas).
	Replicas int
	// MaxDuplicates caps how many workers may execute one item
	// concurrently via straggler re-dispatch (< 2 = 2: the original
	// plus one re-dispatch).
	MaxDuplicates int
}

// Stats describes how a coordinator run distributed its work.
type Stats struct {
	// Shards is the shard count the run used.
	Shards int
	// Assigned counts items initially hashed to each shard.
	Assigned []int64
	// Completed counts items whose first completion ran on a worker
	// homed at each shard. Completed differing from Assigned is
	// stealing/re-dispatch at work.
	Completed []int64
	// Steals counts items transferred between shard queues by work
	// stealing.
	Steals int64
	// Redispatches counts duplicate executions launched for straggling
	// in-flight items by otherwise-idle workers.
	Redispatches int64
}

// itemState tracks one item through the run.
type itemState struct {
	// running counts concurrent executions (re-dispatch duplicates).
	running atomic.Int32
	// done flips once, on first completion.
	done atomic.Bool
}

// queue is one shard's work queue.
type queue struct {
	mu    sync.Mutex
	items []int
}

// pop takes from the front (the shard's own drain order).
func (q *queue) pop() (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return 0, false
	}
	i := q.items[0]
	q.items = q.items[1:]
	return i, true
}

// stealHalf removes the back half of the queue (at least one item).
func (q *queue) stealHalf() []int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := len(q.items)
	if n == 0 {
		return nil
	}
	take := (n + 1) / 2
	stolen := append([]int(nil), q.items[n-take:]...)
	q.items = q.items[:n-take]
	return stolen
}

// push appends items (used to land stolen batches on the thief's
// queue).
func (q *queue) push(items []int) {
	q.mu.Lock()
	q.items = append(q.items, items...)
	q.mu.Unlock()
}

func (q *queue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Run partitions items 0..n-1 onto shard queues by consistent hashing
// on digestOf(i) and executes run(item, homeShard) across the worker
// pool until every item has completed once or ctx is canceled. A worker
// drains its home queue first, then steals half the largest other
// queue, and finally re-dispatches a straggling in-flight item rather
// than idle — so one slow cell cannot strand an otherwise-empty pool.
// run may therefore execute the same item concurrently up to
// MaxDuplicates times; callers make completion idempotent.
//
// Run returns only after every launched execution has returned: no
// run() call is in flight once it does.
func Run(ctx context.Context, n int, digestOf func(int) string, run func(item, homeShard int), opts Options) Stats {
	if ctx == nil {
		ctx = context.Background()
	}
	shards := opts.Shards
	if shards < 1 {
		shards = 1
	}
	workers := opts.Workers
	if workers < 1 {
		workers = shards
	}
	maxDup := opts.MaxDuplicates
	if maxDup < 2 {
		maxDup = 2
	}
	st := Stats{
		Shards:    shards,
		Assigned:  make([]int64, shards),
		Completed: make([]int64, shards),
	}
	if n <= 0 {
		return st
	}

	ring := NewRing(shards, opts.Replicas)
	queues := make([]*queue, shards)
	for s := range queues {
		queues[s] = &queue{}
	}
	for i := 0; i < n; i++ {
		s := ring.Owner(digestOf(i))
		queues[s].items = append(queues[s].items, i)
		st.Assigned[s]++
	}

	states := make([]itemState, n)
	var remaining atomic.Int64
	remaining.Store(int64(n))
	var steals, redispatches atomic.Int64
	completed := make([]atomic.Int64, shards)

	execute := func(i, home int) {
		states[i].running.Add(1)
		run(i, home)
		states[i].running.Add(-1)
		if states[i].done.CompareAndSwap(false, true) {
			completed[home].Add(1)
			remaining.Add(-1)
		}
	}

	// steal moves half of the largest foreign queue onto home and
	// reports whether anything arrived.
	steal := func(home int) bool {
		victim, best := -1, 0
		for s := range queues {
			if s == home {
				continue
			}
			if l := queues[s].len(); l > best {
				victim, best = s, l
			}
		}
		if victim < 0 {
			return false
		}
		stolen := queues[victim].stealHalf()
		if len(stolen) == 0 {
			return false
		}
		steals.Add(int64(len(stolen)))
		queues[home].push(stolen)
		return true
	}

	// redispatch picks a straggling in-flight item under the duplicate
	// cap, preferring the lowest index (the one a sequential run would
	// be stuck on).
	redispatch := func() (int, bool) {
		for i := 0; i < n; i++ {
			if states[i].done.Load() {
				continue
			}
			r := states[i].running.Load()
			if r > 0 && int(r) < maxDup {
				redispatches.Add(1)
				return i, true
			}
		}
		return 0, false
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		home := w % shards
		go func() {
			defer wg.Done()
			for {
				if remaining.Load() == 0 || ctx.Err() != nil {
					return
				}
				if i, ok := queues[home].pop(); ok {
					execute(i, home)
					continue
				}
				if steal(home) {
					continue
				}
				if i, ok := redispatch(); ok {
					execute(i, home)
					continue
				}
				// Nothing queued, nothing to steal, every straggler at
				// its duplicate cap: wait for the dust to settle.
				select {
				case <-ctx.Done():
					return
				case <-time.After(200 * time.Microsecond):
				}
			}
		}()
	}
	wg.Wait()

	st.Steals = steals.Load()
	st.Redispatches = redispatches.Load()
	for s := range completed {
		st.Completed[s] = completed[s].Load()
	}
	return st
}
