package cluster

import (
	"math"
	"testing"

	"mlperf/internal/fault"
	"mlperf/internal/telemetry"
	"mlperf/internal/units"
)

func TestRunTelemetryMetricsAndSpans(t *testing.T) {
	dur := synthDurations(map[string]float64{"long": 10000, "short": 100},
		map[string]float64{"long": 0, "short": 0})
	plan := &fault.Plan{Checkpoint: fault.Checkpoint{
		Interval: 30, SnapshotBytes: 20 * units.GB, ReplayFrac: 1,
	}}
	reg := telemetry.New()
	cfg := Config{
		Fleet: testFleet(4),
		Jobs: []Job{
			{Name: "long", Benchmark: "long", Submit: 0, Widths: []int{4}},
			{Name: "short", Benchmark: "short", Submit: 50, Widths: []int{4}},
		},
		Policy:       SRTF(),
		Durations:    dur,
		Fault:        plan,
		RestartDelay: 5,
		Telemetry:    reg,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lbl := telemetry.L("policy", res.Policy)
	if got := reg.Counter(MetricJobsTotal, lbl).Value(); got != 2 {
		t.Errorf("jobs counter = %d, want 2", got)
	}
	if got := reg.Counter(MetricPreemptions, lbl).Value(); got != int64(res.Metrics.Preemptions) {
		t.Errorf("preemptions counter = %d, want %d", got, res.Metrics.Preemptions)
	}
	if res.Metrics.Preemptions == 0 {
		t.Fatal("scenario should preempt (SRTF evicts the long job)")
	}
	jct := reg.Histogram(MetricJCTSeconds, nil, lbl)
	if jct.Count() != 2 {
		t.Errorf("JCT histogram has %d observations, want 2", jct.Count())
	}
	wantJCT := res.Jobs[0].JCT + res.Jobs[1].JCT
	if math.Abs(jct.Sum()-wantJCT) > 1e-9 {
		t.Errorf("JCT histogram sum %v, want %v", jct.Sum(), wantJCT)
	}
	if got := reg.Gauge(MetricMakespanSeconds, lbl).Value(); got != res.Metrics.Makespan {
		t.Errorf("makespan gauge %v, want %v", got, res.Metrics.Makespan)
	}
	if got := reg.Gauge(MetricGPUUtil, lbl).Value(); got != res.Metrics.GPUUtil {
		t.Errorf("gpu util gauge %v, want %v", got, res.Metrics.GPUUtil)
	}
	// The preemption re-queues the long job behind the short one: queue
	// depth peaks at 1 or more and drains to zero by the end.
	if peak := reg.Gauge(MetricQueueDepthPeak, lbl).Value(); peak < 1 {
		t.Errorf("queue depth peak %v, want >= 1", peak)
	}
	if depth := reg.Gauge(MetricQueueDepth, lbl).Value(); depth != 0 {
		t.Errorf("queue depth %v after the run, want 0", depth)
	}

	// Spans: one run span plus one job span each, in simulated time.
	spans := reg.Tracer().Spans()
	if err := telemetry.ValidateSpans(spans); err != nil {
		t.Fatal(err)
	}
	var runID telemetry.SpanID
	jobSpans := map[string]telemetry.Span{}
	for _, s := range spans {
		switch s.Kind {
		case telemetry.KindRun:
			runID = s.ID
		case telemetry.KindClusterJob:
			jobSpans[s.Name] = s
		}
	}
	if runID == 0 || len(jobSpans) != 2 {
		t.Fatalf("spans: %+v", spans)
	}
	for _, j := range res.Jobs {
		s, ok := jobSpans[j.Name]
		if !ok {
			t.Fatalf("no span for job %s", j.Name)
		}
		if s.Parent != runID {
			t.Errorf("job %s span parent %d, want run %d", j.Name, s.Parent, runID)
		}
		if s.Start != j.Submit || s.End != j.Completed {
			t.Errorf("job %s span [%v,%v], want simulated [%v,%v]",
				j.Name, s.Start, s.End, j.Submit, j.Completed)
		}
	}
}

// TestRunTelemetryDisabledIdentical pins the no-op guarantee: a nil
// registry must not change a single field of the result.
func TestRunTelemetryDisabledIdentical(t *testing.T) {
	dur := synthDurations(map[string]float64{"x": 400, "y": 100}, nil)
	cfg := Config{
		Fleet: testFleet(4),
		Jobs: []Job{
			{Name: "first", Benchmark: "x", Submit: 0, Widths: []int{4}},
			{Name: "second", Benchmark: "y", Submit: 1, Widths: []int{4}},
		},
		Policy:    FIFO(),
		Durations: dur,
	}
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Telemetry = telemetry.New()
	watched, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Metrics != watched.Metrics {
		t.Errorf("telemetry perturbed metrics:\n%+v\n%+v", plain.Metrics, watched.Metrics)
	}
	if len(plain.Events) != len(watched.Events) {
		t.Errorf("telemetry perturbed the event stream: %d vs %d events",
			len(plain.Events), len(watched.Events))
	}
}
