package cluster

import (
	"fmt"
	"math"
	"sort"

	"mlperf/internal/sched"
)

// View is the cluster state a policy decides from at one scheduling
// point. All duration lookups are precomputed and memoized, so policies
// may query freely.
type View struct {
	Now float64
	// Pending holds arrived, unplaced jobs sorted by (submit, trace
	// order).
	Pending []JobView
	// Running holds placed jobs.
	Running []RunView
	// Machines mirrors the fleet with live free-GPU counts.
	Machines []MachineView

	r *run
}

// JobView is one queued job.
type JobView struct {
	Job
	// RemainingFrac is the fraction of work still to run (1 for a fresh
	// job, less after preserved progress from preempted segments).
	RemainingFrac float64
	// Overhead is the pending checkpoint+restart charge the job's next
	// segment will pay.
	Overhead float64
	// Preemptions counts prior evictions.
	Preemptions int
}

// RunView is one placed job.
type RunView struct {
	Job
	// Machine indexes View.Machines.
	Machine int
	Width   int
	// SegStart and Overhead describe the current segment; EndAt is its
	// scheduled completion, Remaining the time to it.
	SegStart, Overhead float64
	EndAt, Remaining   float64
}

// MachineView is one fleet member with its free capacity.
type MachineView struct {
	Machine
	Free int
}

// Duration returns the job's full runtime at width on machine mi, or
// ok=false when the cell is infeasible (width beyond the machine or not
// offered by the job).
func (v *View) Duration(job string, mi, width int) (float64, bool) {
	st, ok := v.r.byName[job]
	if !ok || mi < 0 || mi >= len(v.r.fleet) {
		return 0, false
	}
	d, ok := v.r.dur[st.idx][mi][width]
	return d, ok
}

// Remaining returns the seconds the job would occupy machine mi at the
// given width if placed now: pending overhead plus its unfinished work.
func (v *View) Remaining(job string, mi, width int) (float64, bool) {
	st, ok := v.r.byName[job]
	if !ok {
		return 0, false
	}
	d, ok := v.Duration(job, mi, width)
	if !ok {
		return 0, false
	}
	return st.overhead + (1-st.frac)*d, true
}

// PreemptCharge prices evicting the running job right now: the forced
// checkpoint save plus the restart delay and replay window its next
// segment would pay.
func (v *View) PreemptCharge(rn RunView) float64 {
	st, ok := v.r.byName[rn.Job.Name]
	if !ok || !st.running {
		return 0
	}
	exec := v.Now - st.segStart - st.segOverhead
	if exec < 0 {
		exec = 0
	}
	if exec > st.segRemaining {
		exec = st.segRemaining
	}
	return v.r.ckpt[st.idx] + v.r.restartCost(exec)
}

// view snapshots the run state for one Decide call.
func (r *run) view() *View {
	v := &View{Now: r.eng.Now(), r: r}
	v.Pending = make([]JobView, len(r.pending))
	for i, st := range r.pending {
		v.Pending[i] = JobView{
			Job:           st.spec,
			RemainingFrac: 1 - st.frac,
			Overhead:      st.overhead,
			Preemptions:   st.preempts,
		}
	}
	for _, st := range r.jobs {
		if !st.running {
			continue
		}
		end := st.segStart + st.segOverhead + st.segRemaining
		v.Running = append(v.Running, RunView{
			Job: st.spec, Machine: st.machine, Width: st.width,
			SegStart: st.segStart, Overhead: st.segOverhead,
			EndAt: end, Remaining: end - v.Now,
		})
	}
	v.Machines = make([]MachineView, len(r.fleet))
	for i, m := range r.fleet {
		v.Machines[i] = MachineView{Machine: m, Free: r.nfree[i]}
	}
	return v
}

// Decision is one scheduler action: exactly one of Place or Preempt.
type Decision struct {
	Place   *Placement
	Preempt string
}

// Placement starts a pending job now.
type Placement struct {
	Job     string
	Machine string
	Width   int
}

func place(job, machine string, width int) Decision {
	return Decision{Place: &Placement{Job: job, Machine: machine, Width: width}}
}

// Policy decides placements and preemptions. Decide is called at every
// scheduling point (arrival, completion, and after each applied batch)
// until it returns no decisions; it must be a pure function of the View
// so runs replay deterministically.
type Policy interface {
	Name() string
	Decide(v *View) []Decision
}

// Policies returns the built-in policy set in comparison order.
func Policies() []Policy {
	return []Policy{FIFO(), SRTF(), LPTBackfill(), Moldable()}
}

// PolicyByName resolves a built-in policy.
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "fifo":
		return FIFO(), nil
	case "srtf":
		return SRTF(), nil
	case "lpt", "backfill", "lpt-backfill":
		return LPTBackfill(), nil
	case "moldable", "gang":
		return Moldable(), nil
	}
	return nil, fmt.Errorf("cluster: unknown policy %q (have fifo, srtf, lpt, moldable)", name)
}

// preferredWidth returns the knee of the job's scaling curve on machine
// mi: the smallest width within 10% of its best achievable duration —
// the paper's §IV-D observation that poor scalers should not take the
// whole machine. ok=false when the job fits nowhere on the machine.
func preferredWidth(v *View, j JobView, mi int) (int, bool) {
	best := math.Inf(1)
	found := false
	for _, w := range j.Widths {
		if d, ok := v.Duration(j.Name, mi, w); ok && d < best {
			best = d
			found = true
		}
	}
	if !found {
		return 0, false
	}
	for _, w := range j.Widths {
		if d, ok := v.Duration(j.Name, mi, w); ok && d <= 1.1*best {
			return w, true
		}
	}
	return 0, false
}

// preferredSlot picks the machine where the job's preferred width is
// free right now and its remaining time is smallest.
func preferredSlot(v *View, j JobView) (mi, w int, ok bool) {
	best := math.Inf(1)
	for m := range v.Machines {
		pw, pok := preferredWidth(v, j, m)
		if !pok || pw > v.Machines[m].Free {
			continue
		}
		if rem, rok := v.Remaining(j.Name, m, pw); rok && rem < best-1e-12 {
			best, mi, w, ok = rem, m, pw, true
		}
	}
	return mi, w, ok
}

// bestFit picks the (machine, width) minimizing the job's remaining
// time among widths that fit the free GPUs right now.
func bestFit(v *View, j JobView) (mi, w int, rem float64, ok bool) {
	best := math.Inf(1)
	for m := range v.Machines {
		for _, wd := range j.Widths {
			if wd > v.Machines[m].Free {
				continue
			}
			if r, rok := v.Remaining(j.Name, m, wd); rok && r < best-1e-12 {
				best, mi, w, ok = r, m, wd, true
			}
		}
	}
	return mi, w, best, ok
}

// ---- FIFO ----

// fifo is strict first-come-first-served: the head of the queue demands
// its preferred width and blocks the queue until some machine frees it.
type fifo struct{}

// FIFO returns the strict arrival-order policy — the online analog of
// the paper's naive baseline, and the baseline the comparison table
// measures the other policies against.
func FIFO() Policy { return fifo{} }

func (fifo) Name() string { return "fifo" }

func (fifo) Decide(v *View) []Decision {
	if len(v.Pending) == 0 {
		return nil
	}
	j := v.Pending[0]
	if mi, w, ok := preferredSlot(v, j); ok {
		return []Decision{place(j.Name, v.Machines[mi].Name, w)}
	}
	return nil
}

// ---- SRTF ----

// srtf is preemptive shortest-remaining-time-first: pending jobs are
// served shortest first at whatever width fits now, and when nothing
// fits, the longest-remaining running job is evicted — but only when
// the eviction pays for itself against the checkpoint+restart charge.
type srtf struct{}

// SRTF returns the preemptive shortest-remaining-time-first policy.
func SRTF() Policy { return srtf{} }

func (srtf) Name() string { return "srtf" }

// shortestFirst orders pending jobs by their best possible remaining
// time anywhere in the fleet (ignoring current occupancy), breaking
// ties by queue order.
func shortestFirst(v *View) []JobView {
	type ranked struct {
		j    JobView
		best float64
		pos  int
	}
	rs := make([]ranked, len(v.Pending))
	for i, j := range v.Pending {
		best := math.Inf(1)
		for m := range v.Machines {
			for _, w := range j.Widths {
				if rem, ok := v.Remaining(j.Name, m, w); ok && rem < best {
					best = rem
				}
			}
		}
		rs[i] = ranked{j: j, best: best, pos: i}
	}
	sort.SliceStable(rs, func(a, b int) bool {
		if rs[a].best != rs[b].best {
			return rs[a].best < rs[b].best
		}
		return rs[a].pos < rs[b].pos
	})
	out := make([]JobView, len(rs))
	for i, rk := range rs {
		out[i] = rk.j
	}
	return out
}

func (srtf) Decide(v *View) []Decision {
	if len(v.Pending) == 0 {
		return nil
	}
	order := shortestFirst(v)
	for _, j := range order {
		if mi, w, _, ok := bestFit(v, j); ok {
			return []Decision{place(j.Name, v.Machines[mi].Name, w)}
		}
	}
	// Nothing fits: consider evicting for the globally shortest job.
	p := order[0]
	bestRem := math.Inf(1)
	victim := ""
	for _, rn := range v.Running {
		if rn.SegStart >= v.Now-1e-12 {
			// Placed this very instant; preempting it back would
			// ping-pong inside one scheduling point.
			continue
		}
		avail := v.Machines[rn.Machine].Free + rn.Width
		pBest := math.Inf(1)
		for _, w := range p.Widths {
			if w > avail {
				continue
			}
			if rem, ok := v.Remaining(p.Name, rn.Machine, w); ok && rem < pBest {
				pBest = rem
			}
		}
		if math.IsInf(pBest, 1) {
			continue
		}
		// Evict only when the short job plus the victim's restart charge
		// still undercuts the victim's own remaining time.
		if rn.Remaining > pBest+v.PreemptCharge(rn)+1e-9 {
			if victim == "" || rn.Remaining > bestRem {
				victim = rn.Job.Name
				bestRem = rn.Remaining
			}
		}
	}
	if victim != "" {
		return []Decision{{Preempt: victim}}
	}
	return nil
}

// ---- LPT with backfill ----

// lptBackfill drains the queue longest-job-first (the classic
// makespan-friendly LPT order) with EASY-style backfilling: when the
// longest job's preferred width is not free, it takes a reservation at
// the earliest instant running jobs release enough GPUs, and shorter
// jobs start in the gap — but only where they cannot delay that
// reservation. The backfill pass runs shortest-first, which is what
// lets short jobs slip past a wide head instead of queueing behind it.
type lptBackfill struct{}

// LPTBackfill returns the longest-processing-time-first policy with
// reservation-based backfilling.
func LPTBackfill() Policy { return lptBackfill{} }

func (lptBackfill) Name() string { return "lpt-backfill" }

// reservation returns the machine and earliest time the job's preferred
// width frees up, assuming running jobs release their GPUs at their
// scheduled completions and nothing else starts.
func reservation(v *View, j JobView) (mi int, at float64, ok bool) {
	best := math.Inf(1)
	for m := range v.Machines {
		pw, pok := preferredWidth(v, j, m)
		if !pok {
			continue
		}
		free := v.Machines[m].Free
		if free >= pw {
			if v.Now < best {
				best, mi, ok = v.Now, m, true
			}
			continue
		}
		var ends []RunView
		for _, rn := range v.Running {
			if rn.Machine == m {
				ends = append(ends, rn)
			}
		}
		sort.SliceStable(ends, func(a, b int) bool { return ends[a].EndAt < ends[b].EndAt })
		for _, rn := range ends {
			free += rn.Width
			if free >= pw {
				if rn.EndAt < best {
					best, mi, ok = rn.EndAt, m, true
				}
				break
			}
		}
	}
	return mi, best, ok
}

func (lptBackfill) Decide(v *View) []Decision {
	if len(v.Pending) == 0 {
		return nil
	}
	longest := make([]JobView, len(v.Pending))
	copy(longest, v.Pending)
	best := func(j JobView) float64 {
		b := math.Inf(1)
		for m := range v.Machines {
			for _, w := range j.Widths {
				if rem, ok := v.Remaining(j.Name, m, w); ok && rem < b {
					b = rem
				}
			}
		}
		return b
	}
	sort.SliceStable(longest, func(a, b int) bool { return best(longest[a]) > best(longest[b]) })

	head := longest[0]
	if mi, w, ok := preferredSlot(v, head); ok {
		return []Decision{place(head.Name, v.Machines[mi].Name, w)}
	}
	resM, resAt, resOK := reservation(v, head)
	// Backfill shortest-first: a gap job may start now only where it
	// cannot push the head's reservation back.
	for _, j := range shortestFirst(v) {
		if j.Name == head.Name {
			continue
		}
		bi, bw, rem, ok := bestFit(v, j)
		if !ok {
			continue
		}
		if resOK && bi == resM && v.Now+rem > resAt+1e-9 {
			// Would still hold the reservation machine's GPUs at resAt;
			// try the cheapest width that clears the gap instead.
			ok = false
			bestRem := math.Inf(1)
			for _, w := range j.Widths {
				if w > v.Machines[bi].Free {
					continue
				}
				if r, rok := v.Remaining(j.Name, bi, w); rok && v.Now+r <= resAt+1e-9 && r < bestRem {
					bestRem, bw, ok = r, w, true
				}
			}
			if !ok {
				continue
			}
		}
		return []Decision{place(j.Name, v.Machines[bi].Name, bw)}
	}
	return nil
}

// ---- Moldable width search ----

// moldable reuses the Figure 4 branch-and-bound (sched.Optimal over
// packBnB) as an online lookahead: at each scheduling point it plans the
// queue onto each machine's free GPUs, searching width vectors and
// placements, and commits only the placements the plan starts
// immediately.
type moldable struct {
	// maxJobs caps the queue prefix handed to the exponential search.
	maxJobs int
}

// Moldable returns the gang/moldable width-search policy.
func Moldable() Policy { return moldable{maxJobs: 8} }

func (moldable) Name() string { return "moldable" }

func (p moldable) Decide(v *View) []Decision {
	if len(v.Pending) == 0 {
		return nil
	}
	// Most free capacity first; ties by fleet order.
	order := make([]int, len(v.Machines))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return v.Machines[order[a]].Free > v.Machines[order[b]].Free
	})
	for _, mi := range order {
		free := v.Machines[mi].Free
		if free < 1 {
			continue
		}
		var sj []sched.Job
		for _, j := range v.Pending {
			durs := map[int]float64{}
			for _, w := range j.Widths {
				if w > free {
					continue
				}
				if rem, ok := v.Remaining(j.Name, mi, w); ok {
					durs[w] = rem
				}
			}
			if len(durs) > 0 {
				sj = append(sj, sched.Job{Name: j.Name, Duration: durs})
			}
			if len(sj) == p.maxJobs {
				break
			}
		}
		if len(sj) == 0 {
			continue
		}
		plan, err := sched.Optimal(sj, free)
		if err != nil {
			continue
		}
		var ds []Decision
		for _, pl := range plan.Placements {
			if pl.Start < 1e-9 {
				ds = append(ds, place(pl.Job, v.Machines[mi].Name, len(pl.GPUs)))
			}
		}
		if len(ds) > 0 {
			return ds
		}
	}
	return nil
}
