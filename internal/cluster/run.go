package cluster

import (
	"fmt"
	"math"
	"sort"

	"mlperf/internal/fault"
	"mlperf/internal/sim"
	"mlperf/internal/telemetry"
)

// jobState is one job's live scheduling state.
type jobState struct {
	spec Job
	idx  int
	// frac is the completed fraction of the job's work; preserved across
	// preemptions (the replay window is re-bought by the restart charge).
	frac float64
	// overhead is the pending checkpoint+restart charge the next segment
	// pays at its head; set by exactly one preemption, consumed by
	// exactly one placement.
	overhead     float64
	overheadPaid float64
	preempts     int

	running, started, done bool
	firstStart, completed  float64

	// current segment (valid while running)
	segIdx                                           int
	segSeq                                           int
	segStart, segOverhead, segRemaining, segDuration float64
	machine                                          int
	gpus                                             []int
	width                                            int
}

// run is the live state of one online scheduling simulation.
type run struct {
	cfg   Config
	eng   *sim.Engine
	fleet []Machine
	jobs  []*jobState

	byName     map[string]*jobState
	machByName map[string]int
	free       [][]bool
	nfree      []int

	// dur[job][machine][width] is the precomputed duration table; every
	// feasible cell is priced up front so policies see errors early and
	// decision-time lookups never fail.
	dur  []map[int]map[int]float64
	ckpt []float64

	pending []*jobState
	events  []sim.Event
	segs    []Segment
	err     error

	// policyLbl tags every instrument with the run's policy name;
	// queueGauge/queuePeak track the pending queue (nil no-ops when
	// cfg.Telemetry is nil).
	policyLbl  telemetry.Label
	queueGauge *telemetry.Gauge
	queuePeak  *telemetry.Gauge
}

// maxDecideRounds bounds the policy fixpoint loop at one scheduling
// point; exceeding it is reported as a policy livelock.
func maxDecideRounds(jobs int) int { return 4*jobs + 16 }

// Run executes the online scheduling simulation to completion: jobs
// arrive at their submit times, the policy is consulted at every
// arrival, completion and preemption, and the run ends when every job
// has finished. The result is deterministic: equal configs replay
// identically, event for event.
func Run(cfg Config) (*Result, error) {
	r, err := newRun(cfg)
	if err != nil {
		return nil, err
	}
	for _, st := range r.jobs {
		st := st
		r.eng.Schedule(st.spec.Submit, func() { r.arrive(st) })
	}
	r.eng.Run()
	if r.err != nil {
		return nil, r.err
	}
	outcomes := make([]JobOutcome, len(r.jobs))
	for i, st := range r.jobs {
		if !st.done {
			return nil, fmt.Errorf("cluster: policy %q never completed job %s", cfg.Policy.Name(), st.spec.Name)
		}
		outcomes[i] = JobOutcome{
			Job:         st.spec,
			Start:       st.firstStart,
			Completed:   st.completed,
			JCT:         st.completed - st.spec.Submit,
			Preemptions: st.preempts,
			Overhead:    st.overheadPaid,
		}
	}
	res := &Result{
		Policy:   cfg.Policy.Name(),
		Fleet:    r.fleet,
		Jobs:     outcomes,
		Segments: r.segs,
		Events:   r.events,
	}
	res.Metrics = computeMetrics(cfg.Policy.Name(), r.fleet, outcomes, r.segs)
	r.publishTelemetry(res)
	return res, nil
}

// publishTelemetry reports the finished run to the attached registry:
// summary gauges, per-job JCT observations and one KindClusterJob span
// per job in simulated time, parented under a run-wide span.
func (r *run) publishTelemetry(res *Result) {
	reg := r.cfg.Telemetry
	if reg == nil {
		return
	}
	m := res.Metrics
	reg.Gauge(MetricMakespanSeconds, r.policyLbl).Set(m.Makespan)
	reg.Gauge(MetricGPUUtil, r.policyLbl).Set(m.GPUUtil)
	reg.Gauge(MetricOverheadSeconds, r.policyLbl).Set(m.OverheadSec)
	jct := reg.Histogram(MetricJCTSeconds, telemetry.SimSecondsBuckets, r.policyLbl)
	jobs := reg.Counter(MetricJobsTotal, r.policyLbl)
	preempts := reg.Counter(MetricPreemptions, r.policyLbl)
	tr := reg.Tracer()
	runSpan := tr.StartAt(telemetry.KindRun, "cluster/"+m.Policy, 0, 0)
	for _, j := range res.Jobs {
		jct.Observe(j.JCT)
		jobs.Inc()
		preempts.Add(int64(j.Preemptions))
		id := tr.StartAt(telemetry.KindClusterJob, j.Name, runSpan, j.Submit,
			"benchmark="+j.Benchmark)
		tr.EndAt(id, j.Completed)
	}
	tr.EndAt(runSpan, m.Makespan)
}

// newRun validates the config and prices every feasible duration cell.
func newRun(cfg Config) (*run, error) {
	if cfg.Policy == nil {
		return nil, fmt.Errorf("cluster: nil policy")
	}
	if len(cfg.Fleet) == 0 {
		return nil, fmt.Errorf("cluster: empty fleet")
	}
	if len(cfg.Jobs) == 0 {
		return nil, fmt.Errorf("cluster: no jobs")
	}
	if cfg.Fault != nil {
		if err := cfg.Fault.Validate(); err != nil {
			return nil, err
		}
	}
	if cfg.RestartDelay < 0 || math.IsNaN(cfg.RestartDelay) || math.IsInf(cfg.RestartDelay, 0) {
		return nil, fmt.Errorf("cluster: restart delay %v", cfg.RestartDelay)
	}
	dur := cfg.Durations
	if dur == nil {
		dur = SweepDurations(nil)
	}
	r := &run{
		cfg:        cfg,
		eng:        sim.NewEngine(),
		fleet:      cfg.Fleet,
		byName:     make(map[string]*jobState, len(cfg.Jobs)),
		machByName: make(map[string]int, len(cfg.Fleet)),
		free:       make([][]bool, len(cfg.Fleet)),
		nfree:      make([]int, len(cfg.Fleet)),
		policyLbl:  telemetry.L("policy", cfg.Policy.Name()),
	}
	if cfg.Telemetry != nil {
		r.queueGauge = cfg.Telemetry.Gauge(MetricQueueDepth, r.policyLbl)
		r.queuePeak = cfg.Telemetry.Gauge(MetricQueueDepthPeak, r.policyLbl)
	}
	for i, m := range cfg.Fleet {
		if m.GPUs < 1 {
			return nil, fmt.Errorf("cluster: machine %s has %d GPUs", m.Name, m.GPUs)
		}
		if _, dup := r.machByName[m.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate machine name %s", m.Name)
		}
		r.machByName[m.Name] = i
		r.free[i] = make([]bool, m.GPUs)
		for g := range r.free[i] {
			r.free[i][g] = true
		}
		r.nfree[i] = m.GPUs
	}
	r.jobs = make([]*jobState, len(cfg.Jobs))
	r.dur = make([]map[int]map[int]float64, len(cfg.Jobs))
	r.ckpt = make([]float64, len(cfg.Jobs))
	for i, j := range cfg.Jobs {
		if j.Name == "" {
			return nil, fmt.Errorf("cluster: job %d has no name", i)
		}
		if _, dup := r.byName[j.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate job name %s", j.Name)
		}
		if j.Submit < 0 || math.IsNaN(j.Submit) || math.IsInf(j.Submit, 0) {
			return nil, fmt.Errorf("cluster: job %s submit time %v", j.Name, j.Submit)
		}
		j.Widths = normalizeWidths(j.Widths)
		if len(j.Widths) == 0 {
			return nil, fmt.Errorf("cluster: job %s has no valid widths", j.Name)
		}
		st := &jobState{spec: j, idx: i, machine: -1}
		r.jobs[i] = st
		r.byName[j.Name] = st

		r.dur[i] = make(map[int]map[int]float64, len(cfg.Fleet))
		feasible := false
		for mi, m := range cfg.Fleet {
			r.dur[i][mi] = make(map[int]float64)
			for _, w := range j.Widths {
				if w > m.GPUs {
					continue
				}
				d, err := dur(j, m, w)
				if err != nil {
					return nil, fmt.Errorf("cluster: pricing %s at width %d on %s: %w", j.Name, w, m.Name, err)
				}
				if d <= 0 || math.IsNaN(d) || math.IsInf(d, 0) {
					return nil, fmt.Errorf("cluster: %s at width %d on %s has duration %v", j.Name, w, m.Name, d)
				}
				r.dur[i][mi][w] = d
				feasible = true
			}
		}
		if !feasible {
			return nil, fmt.Errorf("cluster: job %s fits no machine in the fleet", j.Name)
		}
		if cfg.Fault != nil {
			r.ckpt[i] = cfg.Fault.CheckpointCost(snapshotBytes(j.Benchmark))
		}
	}
	return r, nil
}

func normalizeWidths(ws []int) []int {
	if len(ws) == 0 {
		ws = DefaultWidths
	}
	seen := map[int]bool{}
	var out []int
	for _, w := range ws {
		if w >= 1 && !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	sort.Ints(out)
	return out
}

// emit publishes one event to the internal log and every observer.
func (r *run) emit(ev sim.Event) {
	r.events = append(r.events, ev)
	for _, o := range r.cfg.Observers {
		o.OnEvent(ev)
	}
}

// marker emits an instant decision event on the cluster lane.
func (r *run) marker(kind sim.EventKind, st *jobState, note string) {
	now := r.eng.Now()
	r.emit(sim.Event{Kind: kind, Lane: sim.LaneCluster, Step: st.idx, Start: now, End: now, Note: note})
}

func (r *run) arrive(st *jobState) {
	if r.err != nil {
		return
	}
	r.marker(sim.EvJobSubmitted, st, st.spec.Name)
	r.enqueue(st)
	r.schedule()
}

// enqueue inserts the job into the pending queue, kept sorted by
// (submit, trace order) so every policy sees a deterministic base order.
func (r *run) enqueue(st *jobState) {
	i := sort.Search(len(r.pending), func(i int) bool {
		p := r.pending[i]
		if p.spec.Submit != st.spec.Submit {
			return p.spec.Submit > st.spec.Submit
		}
		return p.idx > st.idx
	})
	r.pending = append(r.pending, nil)
	copy(r.pending[i+1:], r.pending[i:])
	r.pending[i] = st
	r.queueGauge.Set(float64(len(r.pending)))
	r.queuePeak.Max(float64(len(r.pending)))
}

func (r *run) dequeue(st *jobState) {
	for i, p := range r.pending {
		if p == st {
			r.pending = append(r.pending[:i], r.pending[i+1:]...)
			r.queueGauge.Set(float64(len(r.pending)))
			return
		}
	}
}

// schedule drives the policy to a fixpoint at the current instant.
func (r *run) schedule() {
	if r.err != nil {
		return
	}
	limit := maxDecideRounds(len(r.jobs))
	for rounds := 0; ; rounds++ {
		if rounds > limit {
			r.err = fmt.Errorf("cluster: policy %q livelocked at t=%.3f", r.cfg.Policy.Name(), r.eng.Now())
			return
		}
		ds := r.cfg.Policy.Decide(r.view())
		if len(ds) == 0 {
			return
		}
		for _, d := range ds {
			if err := r.apply(d); err != nil {
				r.err = fmt.Errorf("cluster: policy %q: %w", r.cfg.Policy.Name(), err)
				return
			}
		}
	}
}

func (r *run) apply(d Decision) error {
	switch {
	case d.Place != nil && d.Preempt == "":
		return r.place(*d.Place)
	case d.Place == nil && d.Preempt != "":
		return r.preempt(d.Preempt)
	}
	return fmt.Errorf("decision must set exactly one of Place or Preempt")
}

// place starts a pending job on a machine's lowest free GPUs.
func (r *run) place(p Placement) error {
	now := r.eng.Now()
	st, ok := r.byName[p.Job]
	if !ok {
		return fmt.Errorf("place: unknown job %s", p.Job)
	}
	if st.running || st.done || st.spec.Submit > now+1e-12 {
		return fmt.Errorf("place: job %s is not pending", p.Job)
	}
	mi, ok := r.machByName[p.Machine]
	if !ok {
		return fmt.Errorf("place: unknown machine %s", p.Machine)
	}
	D, ok := r.dur[st.idx][mi][p.Width]
	if !ok {
		return fmt.Errorf("place: job %s cannot run at width %d on %s", p.Job, p.Width, p.Machine)
	}
	if r.nfree[mi] < p.Width {
		return fmt.Errorf("place: %s has %d free GPUs, %s wants %d", p.Machine, r.nfree[mi], p.Job, p.Width)
	}
	gpus := make([]int, 0, p.Width)
	for g := 0; g < len(r.free[mi]) && len(gpus) < p.Width; g++ {
		if r.free[mi][g] {
			r.free[mi][g] = false
			gpus = append(gpus, g)
		}
	}
	r.nfree[mi] -= p.Width

	ov := st.overhead
	st.overhead = 0
	remaining := (1 - st.frac) * D
	st.running = true
	if !st.started {
		st.started = true
		st.firstStart = now
	}
	st.machine, st.gpus, st.width = mi, gpus, p.Width
	st.segStart, st.segOverhead, st.segRemaining, st.segDuration = now, ov, remaining, D
	st.segSeq++
	seq := st.segSeq
	st.segIdx = len(r.segs)
	r.segs = append(r.segs, Segment{
		Job: st.spec.Name, Machine: mi, GPUs: gpus, Width: p.Width,
		Start: now, Overhead: ov, Duration: D,
	})
	r.dequeue(st)

	note := fmt.Sprintf("%s width %d on %s", st.spec.Name, p.Width, r.fleet[mi].Name)
	r.marker(sim.EvJobPlaced, st, note)
	if st.preempts > 0 {
		r.marker(sim.EvJobResumed, st, fmt.Sprintf("%s after %.1fs overhead", st.spec.Name, ov))
	}
	r.eng.Schedule(now+ov+remaining, func() { r.complete(st, seq) })
	return nil
}

// preempt evicts a running job: progress since the segment's last
// periodic checkpoint boundary is preserved by a forced snapshot save
// plus a replay window, and the job re-enters the queue carrying the
// checkpoint+restart charge — computed here, charged exactly once, at
// the head of its next segment.
func (r *run) preempt(name string) error {
	now := r.eng.Now()
	st, ok := r.byName[name]
	if !ok {
		return fmt.Errorf("preempt: unknown job %s", name)
	}
	if !st.running {
		return fmt.Errorf("preempt: job %s is not running", name)
	}
	exec := now - st.segStart - st.segOverhead
	if exec < 0 {
		exec = 0
	}
	if exec > st.segRemaining {
		exec = st.segRemaining
	}
	charge := r.ckpt[st.idx] + r.restartCost(exec)
	st.frac += exec / st.segDuration
	st.running = false
	st.preempts++
	st.overhead = charge
	st.overheadPaid += charge
	r.endSegment(st, now, exec, true)
	r.marker(sim.EvJobPreempted, st, fmt.Sprintf("%s after %.1fs of work", name, exec))
	r.marker(sim.EvJobCheckpointed, st, fmt.Sprintf("%s charge %.1fs", name, charge))
	r.releaseGPUs(st)
	r.enqueue(st)
	return nil
}

// restartCost prices one preemption's restart through the fault model:
// the configured restart delay plus the plan's replay of the window
// since the last checkpoint boundary of the interrupted segment.
func (r *run) restartCost(exec float64) float64 {
	pr := fault.Preemption{At: exec, RestartDelay: r.cfg.RestartDelay}
	if r.cfg.Fault == nil {
		return pr.RestartDelay
	}
	return r.cfg.Fault.RestartCost(pr)
}

func (r *run) complete(st *jobState, seq int) {
	if r.err != nil || !st.running || st.segSeq != seq {
		return
	}
	now := r.eng.Now()
	st.frac = 1
	st.running = false
	st.done = true
	st.completed = now
	r.endSegment(st, now, st.segRemaining, false)
	r.marker(sim.EvJobCompleted, st, st.spec.Name)
	r.releaseGPUs(st)
	r.schedule()
}

// endSegment closes the job's open segment and publishes its occupancy
// as one EvJobRan span per held GPU lane.
func (r *run) endSegment(st *jobState, now, work float64, preempted bool) {
	seg := &r.segs[st.segIdx]
	seg.End = now
	seg.Work = work
	seg.Preempted = preempted
	for _, g := range st.gpus {
		r.emit(sim.Event{
			Kind: sim.EvJobRan, Lane: gpuLane(r.fleet, st.machine, g), Step: st.idx,
			Start: seg.Start, End: now, Note: st.spec.Name,
		})
	}
}

func (r *run) releaseGPUs(st *jobState) {
	for _, g := range st.gpus {
		r.free[st.machine][g] = true
	}
	r.nfree[st.machine] += st.width
	st.gpus = nil
	st.machine = -1
	st.width = 0
}
