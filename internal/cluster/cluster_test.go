package cluster

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"mlperf/internal/fault"
	"mlperf/internal/sim"
	"mlperf/internal/units"
)

// synthDurations prices jobs from a table of base (width-1) durations
// with a per-job scaling exponent: d(w) = base / w^alpha.
func synthDurations(base map[string]float64, alpha map[string]float64) DurationFn {
	return func(j Job, m Machine, w int) (float64, error) {
		b := base[j.Benchmark]
		a, ok := alpha[j.Benchmark]
		if !ok {
			a = 0.8
		}
		return b / math.Pow(float64(w), a), nil
	}
}

func testFleet(gpus ...int) []Machine {
	out := make([]Machine, len(gpus))
	for i, g := range gpus {
		out[i] = Machine{Name: string(rune('a' + i)), System: "synth", GPUs: g}
	}
	return out
}

func TestFleetFromCatalog(t *testing.T) {
	fleet, err := Fleet("dss8440", "dgx-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet) != 2 || fleet[0].GPUs != 8 {
		t.Fatalf("fleet = %+v", fleet)
	}
	if fleet[0].Name == fleet[1].Name {
		t.Fatalf("duplicate machine names: %+v", fleet)
	}
	if _, err := Fleet("no-such-box"); err == nil {
		t.Fatal("unknown system accepted")
	}
}

func TestFIFOSingleMachine(t *testing.T) {
	dur := synthDurations(map[string]float64{"x": 400, "y": 100}, nil)
	res, err := Run(Config{
		Fleet: testFleet(4),
		Jobs: []Job{
			{Name: "first", Benchmark: "x", Submit: 0, Widths: []int{4}},
			{Name: "second", Benchmark: "y", Submit: 1, Widths: []int{4}},
		},
		Policy:    FIFO(),
		Durations: dur,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	// Strict FIFO: first runs 0..d, second queues behind it.
	if res.Jobs[0].Start != 0 {
		t.Errorf("first start = %v", res.Jobs[0].Start)
	}
	if res.Jobs[1].Start != res.Jobs[0].Completed {
		t.Errorf("second start %v != first completion %v", res.Jobs[1].Start, res.Jobs[0].Completed)
	}
	if res.Metrics.Preemptions != 0 {
		t.Errorf("FIFO preempted %d jobs", res.Metrics.Preemptions)
	}
}

// TestSRTFPreemptionChargedOnce pins the preemption economics: one
// eviction charges the checkpoint save plus the fault model's restart
// cost exactly once, and the whole run replays byte-identically.
func TestSRTFPreemptionChargedOnce(t *testing.T) {
	dur := synthDurations(map[string]float64{"long": 10000, "short": 100}, map[string]float64{"long": 0, "short": 0})
	plan := &fault.Plan{Checkpoint: fault.Checkpoint{
		Interval:      30,
		SnapshotBytes: 20 * units.GB, // 10 s at the default 2 GB/s
		ReplayFrac:    1,
	}}
	cfg := Config{
		Fleet: testFleet(4),
		Jobs: []Job{
			{Name: "long", Benchmark: "long", Submit: 0, Widths: []int{4}},
			{Name: "short", Benchmark: "short", Submit: 50, Widths: []int{4}},
		},
		Policy:       SRTF(),
		Durations:    dur,
		Fault:        plan,
		RestartDelay: 5,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	long := res.Jobs[0]
	if long.Preemptions != 1 {
		t.Fatalf("long preempted %d times, want 1", long.Preemptions)
	}
	// Charge: 10 s checkpoint write + 5 s restart delay + replay of the
	// 20 s since the last 30 s checkpoint boundary (50 s executed).
	const wantCharge = 10 + 5 + 20
	if math.Abs(long.Overhead-wantCharge) > 1e-9 {
		t.Errorf("preemption overhead = %v, want %v", long.Overhead, wantCharge)
	}
	counts := map[sim.EventKind]int{}
	for _, ev := range res.Events {
		counts[ev.Kind]++
	}
	for _, k := range []sim.EventKind{sim.EvJobPreempted, sim.EvJobCheckpointed, sim.EvJobResumed} {
		if counts[k] != 1 {
			t.Errorf("%s published %d times, want 1", k, counts[k])
		}
	}
	if counts[sim.EvJobSubmitted] != 2 || counts[sim.EvJobCompleted] != 2 {
		t.Errorf("submit/complete counts = %d/%d", counts[sim.EvJobSubmitted], counts[sim.EvJobCompleted])
	}
	// short runs 50..150; long resumes at 150, pays the charge, then
	// finishes its remaining 9950 s of work.
	if got, want := res.Jobs[1].Completed, 150.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("short completed at %v, want %v", got, want)
	}
	if got, want := long.Completed, 150+wantCharge+9950.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("long completed at %v, want %v", got, want)
	}

	// Replay determinism: the same config yields the same run, event for
	// event.
	again, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, again) {
		t.Error("re-running the same config changed the result")
	}
}

// TestPoliciesValidateOnRandomTraces is the online analog of the sched
// property test: every policy must produce a Validate-clean run on
// randomized moldable arrival traces, deterministically.
func TestPoliciesValidateOnRandomTraces(t *testing.T) {
	widthSets := [][]int{{1, 2, 4}, {2, 4}, {1}, {1, 2, 4, 8}, {4, 8}}
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		base := map[string]float64{}
		alpha := map[string]float64{}
		n := 3 + rng.Intn(6)
		jobs := make([]Job, n)
		at := 0.0
		for i := range jobs {
			bench := string(rune('p' + i))
			base[bench] = 100 + rng.Float64()*4900
			alpha[bench] = 0.1 + rng.Float64()*0.9
			jobs[i] = Job{
				Name:      bench + "-job",
				Benchmark: bench,
				Submit:    at,
				Widths:    widthSets[rng.Intn(len(widthSets))],
			}
			at += rng.ExpFloat64() * 300
		}
		fleet := testFleet(8, 4)
		plan := &fault.Plan{Checkpoint: fault.Checkpoint{Interval: 120, SnapshotBytes: units.GB, ReplayFrac: 0.5}}
		for _, pol := range Policies() {
			cfg := Config{
				Fleet: fleet, Jobs: jobs, Policy: pol,
				Durations:    synthDurations(base, alpha),
				Fault:        plan,
				RestartDelay: 15,
			}
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("seed %d policy %s: %v", seed, pol.Name(), err)
			}
			if err := res.Validate(); err != nil {
				t.Errorf("seed %d policy %s: %v", seed, pol.Name(), err)
			}
			if res.Metrics.Makespan <= 0 || res.Metrics.GPUUtil <= 0 || res.Metrics.GPUUtil > 1+1e-9 {
				t.Errorf("seed %d policy %s: metrics %+v", seed, pol.Name(), res.Metrics)
			}
			again, err := Run(cfg)
			if err != nil {
				t.Fatalf("seed %d policy %s replay: %v", seed, pol.Name(), err)
			}
			if !reflect.DeepEqual(res, again) {
				t.Errorf("seed %d policy %s: replay diverged", seed, pol.Name())
			}
		}
	}
}

// TestSRTFAndBackfillBeatFIFO pins the paper-motivated ordering: on a
// trace with a long head-of-line job, both SRTF and LPT-with-backfill
// finish the short jobs earlier than strict FIFO.
func TestSRTFAndBackfillBeatFIFO(t *testing.T) {
	dur := synthDurations(
		map[string]float64{"big": 2000, "wide": 100, "small": 100},
		map[string]float64{"big": 0, "wide": 0, "small": 0},
	)
	jobs := []Job{
		{Name: "big", Benchmark: "big", Submit: 0, Widths: []int{2}},
		{Name: "wide", Benchmark: "wide", Submit: 1, Widths: []int{4}},
		{Name: "small", Benchmark: "small", Submit: 2, Widths: []int{2}},
	}
	mean := map[string]float64{}
	for _, pol := range Policies() {
		res, err := Run(Config{
			Fleet: testFleet(4), Jobs: jobs, Policy: pol,
			Durations: dur, RestartDelay: 5,
		})
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if err := res.Validate(); err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		mean[pol.Name()] = res.Metrics.MeanJCT
	}
	if mean["srtf"] >= mean["fifo"] {
		t.Errorf("srtf mean JCT %v not better than fifo %v", mean["srtf"], mean["fifo"])
	}
	if mean["lpt-backfill"] >= mean["fifo"] {
		t.Errorf("lpt-backfill mean JCT %v not better than fifo %v", mean["lpt-backfill"], mean["fifo"])
	}
}

func TestRunErrors(t *testing.T) {
	dur := synthDurations(map[string]float64{"x": 100}, nil)
	base := Config{
		Fleet:     testFleet(4),
		Jobs:      []Job{{Name: "j", Benchmark: "x", Submit: 0}},
		Policy:    FIFO(),
		Durations: dur,
	}
	for name, mut := range map[string]func(*Config){
		"nil policy":     func(c *Config) { c.Policy = nil },
		"empty fleet":    func(c *Config) { c.Fleet = nil },
		"no jobs":        func(c *Config) { c.Jobs = nil },
		"dup job":        func(c *Config) { c.Jobs = append(c.Jobs, c.Jobs[0]) },
		"neg submit":     func(c *Config) { c.Jobs[0].Submit = -1 },
		"no fit":         func(c *Config) { c.Jobs[0].Widths = []int{16} },
		"neg restart":    func(c *Config) { c.RestartDelay = -1 },
		"bad fault plan": func(c *Config) { c.Fault = &fault.Plan{Checkpoint: fault.Checkpoint{Interval: -1}} },
	} {
		cfg := base
		cfg.Jobs = append([]Job(nil), base.Jobs...)
		mut(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

// stuckPolicy never places anything; the run must report the deadlock
// instead of returning a partial result.
type stuckPolicy struct{}

func (stuckPolicy) Name() string            { return "stuck" }
func (stuckPolicy) Decide(*View) []Decision { return nil }

// greedyBadPolicy emits an infeasible decision; the core must reject it.
type greedyBadPolicy struct{}

func (greedyBadPolicy) Name() string { return "bad" }
func (greedyBadPolicy) Decide(v *View) []Decision {
	if len(v.Pending) == 0 {
		return nil
	}
	return []Decision{place(v.Pending[0].Name, v.Machines[0].Name, 999)}
}

func TestPolicyMisbehavior(t *testing.T) {
	dur := synthDurations(map[string]float64{"x": 100}, nil)
	cfg := Config{
		Fleet:     testFleet(4),
		Jobs:      []Job{{Name: "j", Benchmark: "x", Submit: 0, Widths: []int{2}}},
		Durations: dur,
	}
	cfg.Policy = stuckPolicy{}
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "never completed") {
		t.Errorf("stuck policy: %v", err)
	}
	cfg.Policy = greedyBadPolicy{}
	if _, err := Run(cfg); err == nil {
		t.Error("infeasible decision accepted")
	}
}

func TestTimelineAndChromeTrace(t *testing.T) {
	dur := synthDurations(map[string]float64{"x": 300, "y": 200}, nil)
	log := &sim.EventLog{}
	res, err := Run(Config{
		Fleet: testFleet(2),
		Jobs: []Job{
			{Name: "jx", Benchmark: "x", Submit: 0, Widths: []int{1, 2}},
			{Name: "jy", Benchmark: "y", Submit: 0, Widths: []int{1, 2}},
		},
		Policy:    Moldable(),
		Durations: dur,
		Observers: []sim.Observer{log},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(log.Events, res.Events) {
		t.Error("observer saw a different event stream than the result records")
	}
	tl := res.Timeline()
	if _, ok := tl.Lanes["a/gpu0"]; !ok {
		t.Fatalf("timeline lanes = %v", mapsKeys(tl.Lanes))
	}
	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(decoded.TraceEvents) == 0 {
		t.Error("empty chrome trace")
	}
}

func mapsKeys[K comparable, V any](m map[K]V) []K {
	out := make([]K, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestSyntheticTraceDeterministic(t *testing.T) {
	a := SyntheticTrace(7, 10, 300)
	b := SyntheticTrace(7, 10, 300)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("equal seeds produced different traces")
	}
	if a[0].Submit != 0 {
		t.Errorf("first arrival at %v, want 0", a[0].Submit)
	}
	seen := map[string]bool{}
	for i, j := range a {
		if seen[j.Name] {
			t.Errorf("duplicate job name %s", j.Name)
		}
		seen[j.Name] = true
		if i > 0 && j.Submit < a[i-1].Submit {
			t.Errorf("arrivals not monotone at %d", i)
		}
	}
	if c := SyntheticTrace(8, 10, 300); reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical traces")
	}
}
