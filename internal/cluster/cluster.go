// Package cluster generalizes the paper's §IV-D scheduling study
// (internal/sched, Figure 4) from one-shot offline packing to an online,
// event-driven multi-tenant scheduler: moldable training jobs arrive
// over time on a fleet of machines drawn from the internal/hw catalog,
// and a pluggable Policy decides placements, widths and preemptions at
// every scheduling point. Per-job durations come from the memoized sweep
// engine (the same Table IV cells Figure 4 recalls), so width × machine
// lookups are cheap; preemptions are priced through the internal/fault
// checkpoint/restart cost model; and every decision is published on the
// simulator's typed event bus, so cluster schedules render through the
// same Timeline/Chrome-trace machinery as pipeline runs.
package cluster

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"mlperf/internal/fault"
	"mlperf/internal/hw"
	"mlperf/internal/sim"
	"mlperf/internal/sweep"
	"mlperf/internal/telemetry"
	"mlperf/internal/units"
	"mlperf/internal/workload"
)

// Machine is one fleet member. System names a platform in the hw
// catalog; it is only interpreted by the DurationFn, so synthetic tests
// may use any label.
type Machine struct {
	// Name is the unique fleet identifier ("m0-dss8440").
	Name string
	// System is the hw catalog name durations are simulated on.
	System string
	// GPUs is the schedulable device count.
	GPUs int
}

// Fleet builds machines from hw catalog names (aliases accepted,
// duplicates allowed — "dss8440,dss8440" is a two-machine fleet).
func Fleet(systems ...string) ([]Machine, error) {
	if len(systems) == 0 {
		return nil, fmt.Errorf("cluster: empty fleet")
	}
	out := make([]Machine, len(systems))
	for i, name := range systems {
		sys, err := hw.SystemByName(name)
		if err != nil {
			return nil, err
		}
		out[i] = Machine{
			Name:   fmt.Sprintf("m%d-%s", i, slug(sys.Name)),
			System: sys.Name,
			GPUs:   sys.GPUCount,
		}
	}
	return out, nil
}

func slug(s string) string {
	return strings.ReplaceAll(strings.ToLower(strings.TrimSpace(s)), " ", "")
}

// Job is one moldable job of the arrival trace.
type Job struct {
	// Name is unique within the trace.
	Name string
	// Benchmark names the workload whose simulated durations price the
	// job (any label under a custom DurationFn).
	Benchmark string
	// Submit is the arrival time in seconds.
	Submit float64
	// Widths are the GPU counts the job can run at (nil = 1/2/4/8).
	Widths []int
}

// DefaultWidths are the power-of-two widths a Job with nil Widths may
// run at — the widths the paper's Figure 4 searches over.
var DefaultWidths = []int{1, 2, 4, 8}

// DurationFn prices one (job, machine, width) cell: the job's full
// runtime in seconds at that width on that machine.
type DurationFn func(j Job, m Machine, width int) (float64, error)

// SweepDurations prices cells on a memoized sweep engine: each lookup is
// one Table IV-style cell (benchmark × system × GPU count), simulated at
// most once per process and recalled from the cache afterwards. Pass
// nil for the shared default engine.
func SweepDurations(e *sweep.Engine) DurationFn {
	if e == nil {
		e = sweep.Default
	}
	return func(j Job, m Machine, width int) (float64, error) {
		rec, err := e.Cell(sweep.CellKey{Benchmark: j.Benchmark, System: m.System, GPUs: width})
		if err != nil {
			return 0, err
		}
		return rec.TimeToTrainMin * 60, nil
	}
}

// Config is one online scheduling run.
type Config struct {
	Fleet  []Machine
	Jobs   []Job
	Policy Policy
	// Durations prices (job, machine, width) cells; nil uses the shared
	// memoized sweep engine.
	Durations DurationFn
	// Fault prices preemption: the plan's Checkpoint model sets the
	// forced-save write cost and the replay window charged on restart.
	// nil (or an empty plan) makes preemption cost RestartDelay only.
	Fault *fault.Plan
	// RestartDelay is the re-provision time in seconds charged per
	// preemption on top of the checkpoint/replay cost.
	RestartDelay float64
	// Observers subscribe to the run's typed event stream (the same
	// sim.Observer interface pipeline runs publish to).
	Observers []sim.Observer
	// Telemetry, when non-nil, receives per-policy metrics (JCT
	// histogram, preemption/job counters, queue-depth gauges, makespan
	// and utilization) plus one span per job in simulated time. Nil
	// disables instrumentation with zero behavioural difference.
	Telemetry *telemetry.Registry
}

// Metric names the scheduler registers, all labeled policy=<name>.
const (
	MetricJCTSeconds      = "cluster_jct_seconds"       // histogram of job completion times
	MetricJobsTotal       = "cluster_jobs_total"        // counter
	MetricPreemptions     = "cluster_preemptions_total" // counter
	MetricQueueDepth      = "cluster_queue_depth"       // gauge, live pending jobs
	MetricQueueDepthPeak  = "cluster_queue_depth_peak"  // gauge, high-water pending jobs
	MetricMakespanSeconds = "cluster_makespan_seconds"  // gauge
	MetricGPUUtil         = "cluster_gpu_util"          // gauge, 0..1
	MetricOverheadSeconds = "cluster_overhead_seconds"  // gauge, total preemption charge
)

// Segment is one executed slice of a job: a width-GPU reservation on one
// machine from Start to End. A preempted job has several segments.
type Segment struct {
	Job string
	// Machine indexes Result.Fleet.
	Machine int
	// GPUs are the device indices held for the whole span.
	GPUs  []int
	Width int
	// Start and End bound the reservation; the first Overhead seconds
	// are the checkpoint+restart charge, the rest is training work.
	Start, End float64
	// Overhead is the preemption charge paid at the segment head
	// (zero for a first placement).
	Overhead float64
	// Work is the training seconds executed (End - Start - Overhead for
	// a completed span, possibly less when preempted mid-overhead).
	Work float64
	// Duration is the job's full runtime at this (machine, width) — the
	// denominator Work advances the job's progress fraction by.
	Duration float64
	// Preempted marks a segment cut short by the scheduler.
	Preempted bool
}

// JobOutcome is one job's fate.
type JobOutcome struct {
	Job
	// Start is the first placement time.
	Start float64
	// Completed is the completion time.
	Completed float64
	// JCT is the job completion time (Completed - Submit).
	JCT float64
	// Preemptions counts evictions; Overhead is the total
	// checkpoint+restart seconds they charged (each exactly once).
	Preemptions int
	Overhead    float64
}

// Metrics summarizes one policy's run.
type Metrics struct {
	Policy string
	// Makespan is the last completion time.
	Makespan float64
	// MeanJCT and P95JCT summarize job completion times.
	MeanJCT, P95JCT float64
	// GPUUtil is reserved GPU-seconds over fleet capacity × makespan.
	GPUUtil float64
	// Preemptions and OverheadSec total the eviction count and charge.
	Preemptions int
	OverheadSec float64
}

// Result is a completed online run.
type Result struct {
	Policy   string
	Fleet    []Machine
	Jobs     []JobOutcome
	Segments []Segment
	Metrics  Metrics
	// Events is the full decision/segment event stream in publication
	// order.
	Events []sim.Event
}

// Validate checks the run is feasible: no GPU is double-booked, every
// segment stays inside the fleet and after its job's submit, every job
// runs to completion exactly, and the metrics' makespan covers every
// span. It is the online analog of sched.Schedule.Validate.
func (r *Result) Validate() error {
	type span struct {
		start, end float64
		job        string
	}
	perGPU := map[[2]int][]span{}
	byJob := map[string][]Segment{}
	for _, s := range r.Segments {
		if s.Machine < 0 || s.Machine >= len(r.Fleet) {
			return fmt.Errorf("cluster: %s on machine %d outside fleet", s.Job, s.Machine)
		}
		m := r.Fleet[s.Machine]
		if s.End < s.Start {
			return fmt.Errorf("cluster: %s segment ends before it starts", s.Job)
		}
		if s.End > r.Metrics.Makespan+1e-9 {
			return fmt.Errorf("cluster: %s segment ends after makespan", s.Job)
		}
		if len(s.GPUs) != s.Width {
			return fmt.Errorf("cluster: %s holds %d GPUs at width %d", s.Job, len(s.GPUs), s.Width)
		}
		for _, g := range s.GPUs {
			if g < 0 || g >= m.GPUs {
				return fmt.Errorf("cluster: %s uses %s GPU %d outside [0,%d)", s.Job, m.Name, g, m.GPUs)
			}
			key := [2]int{s.Machine, g}
			for _, sp := range perGPU[key] {
				if s.Start < sp.end-1e-9 && sp.start < s.End-1e-9 {
					return fmt.Errorf("cluster: %s GPU %d double-booked by %s and %s", m.Name, g, sp.job, s.Job)
				}
			}
			perGPU[key] = append(perGPU[key], span{s.Start, s.End, s.Job})
		}
		byJob[s.Job] = append(byJob[s.Job], s)
	}
	for _, j := range r.Jobs {
		segs := byJob[j.Name]
		if len(segs) == 0 {
			return fmt.Errorf("cluster: job %s never ran", j.Name)
		}
		frac := 0.0
		for _, s := range segs {
			if s.Start < j.Submit-1e-9 {
				return fmt.Errorf("cluster: job %s runs before it is submitted", j.Name)
			}
			if s.Duration <= 0 {
				return fmt.Errorf("cluster: job %s segment with non-positive duration", j.Name)
			}
			frac += s.Work / s.Duration
		}
		if math.Abs(frac-1) > 1e-6 {
			return fmt.Errorf("cluster: job %s completed %.9f of its work, want 1", j.Name, frac)
		}
		if last := segs[len(segs)-1]; math.Abs(last.End-j.Completed) > 1e-9 {
			return fmt.Errorf("cluster: job %s completion %.3f != last segment end %.3f", j.Name, j.Completed, last.End)
		}
		if j.Preemptions != len(segs)-1 {
			return fmt.Errorf("cluster: job %s has %d preemptions but %d segments", j.Name, j.Preemptions, len(segs))
		}
	}
	if len(byJob) != len(r.Jobs) {
		return fmt.Errorf("cluster: segments for %d jobs, outcomes for %d", len(byJob), len(r.Jobs))
	}
	return nil
}

// Timeline renders the run on the simulator's timeline machinery: one
// lane per machine GPU holding the job reservations, plus the "cluster"
// lane of decision markers — loadable in chrome://tracing through
// Timeline.WriteChromeTrace like any pipeline run.
func (r *Result) Timeline() *sim.Timeline {
	lanes := map[string][]sim.Interval{}
	for mi, m := range r.Fleet {
		for g := 0; g < m.GPUs; g++ {
			lanes[gpuLane(r.Fleet, mi, g)] = nil
		}
	}
	for _, s := range r.Segments {
		label := s.Job
		if s.Preempted {
			label += " (preempted)"
		}
		for _, g := range s.GPUs {
			lane := gpuLane(r.Fleet, s.Machine, g)
			lanes[lane] = append(lanes[lane], sim.Interval{Start: s.Start, End: s.End, Label: label})
		}
	}
	for _, ev := range r.Events {
		if ev.Lane != sim.LaneCluster {
			continue
		}
		lanes[sim.LaneCluster] = append(lanes[sim.LaneCluster], sim.Interval{
			Start: ev.Start, End: ev.End, Label: ev.Label(),
		})
	}
	return &sim.Timeline{Lanes: lanes}
}

func gpuLane(fleet []Machine, mi, g int) string {
	return fmt.Sprintf("%s/gpu%d", fleet[mi].Name, g)
}

// computeMetrics fills the summary from outcomes and segments.
func computeMetrics(policy string, fleet []Machine, jobs []JobOutcome, segs []Segment) Metrics {
	m := Metrics{Policy: policy}
	jcts := make([]float64, 0, len(jobs))
	for _, j := range jobs {
		if j.Completed > m.Makespan {
			m.Makespan = j.Completed
		}
		jcts = append(jcts, j.JCT)
		m.MeanJCT += j.JCT
		m.Preemptions += j.Preemptions
		m.OverheadSec += j.Overhead
	}
	if len(jcts) > 0 {
		m.MeanJCT /= float64(len(jcts))
		sort.Float64s(jcts)
		idx := int(math.Ceil(0.95*float64(len(jcts)))) - 1
		if idx < 0 {
			idx = 0
		}
		m.P95JCT = jcts[idx]
	}
	capacity := 0
	for _, mm := range fleet {
		capacity += mm.GPUs
	}
	if capacity > 0 && m.Makespan > 0 {
		var busy float64
		for _, s := range segs {
			busy += (s.End - s.Start) * float64(s.Width)
		}
		m.GPUUtil = busy / (float64(capacity) * m.Makespan)
	}
	return m
}

// snapshotBytes sizes a job's forced checkpoint the way the simulator
// does (parameters + optimizer state); unknown benchmarks (synthetic
// tests) fall back to zero, leaving only the plan's explicit
// SnapshotBytes in play.
func snapshotBytes(benchmark string) units.Bytes {
	b, err := workload.ByName(benchmark)
	if err != nil || b.Job.Net == nil {
		return 0
	}
	return b.Job.Net.ParamBytes(4) + b.Job.Net.OptimizerStateBytes(b.Job.OptimizerSlots)
}
