package cluster

import (
	"fmt"
	"math/rand"
	"strings"

	"mlperf/internal/workload"
)

// SyntheticTrace draws a deterministic arrival trace of n jobs from the
// MLPerf suite: benchmarks are sampled uniformly, interarrival gaps are
// exponential with the given mean (seconds), and each job carries its
// own width menu — a power-of-two GPU demand cap drawn from a
// cluster-trace-like mix (most tenants ask for a slice of a machine,
// some for all of it). The mixed demands are what give the policies
// real packing decisions: a full-machine head can block while narrow
// jobs could run. The first job arrives at t=0; equal seeds replay the
// exact same trace.
func SyntheticTrace(seed int64, n int, meanGap float64) []Job {
	if n < 1 {
		n = 1
	}
	if meanGap < 0 {
		meanGap = 0
	}
	rng := rand.New(rand.NewSource(seed))
	suite := workload.MLPerfSuite()
	jobs := make([]Job, n)
	t := 0.0
	for i := range jobs {
		b := suite[rng.Intn(len(suite))]
		short := strings.ToLower(strings.TrimPrefix(b.Abbrev, "MLPf_"))
		var widths []int
		switch p := rng.Float64(); {
		case p < 0.20:
			widths = []int{1}
		case p < 0.45:
			widths = []int{1, 2}
		case p < 0.75:
			widths = []int{1, 2, 4}
		default:
			widths = []int{1, 2, 4, 8}
		}
		jobs[i] = Job{
			Name:      fmt.Sprintf("j%02d-%s", i, short),
			Benchmark: b.Abbrev,
			Submit:    t,
			Widths:    widths,
		}
		t += rng.ExpFloat64() * meanGap
	}
	return jobs
}
