package cas

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func digestOf(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}

func TestRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"record":"hello"}`)
	d := digestOf(payload)

	if _, ok, err := s.Get(d); err != nil || ok {
		t.Fatalf("get before put: ok=%v err=%v", ok, err)
	}
	if err := s.Put(d, payload); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(d)
	if err != nil || !ok {
		t.Fatalf("get after put: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload round trip: got %q", got)
	}
	// Idempotent re-put takes the content-addressed fast path.
	if err := s.Put(d, payload); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.PutsSkipped != 1 || st.Quarantined != 0 {
		t.Errorf("stats %+v, want 1 hit / 1 miss / 1 put / 1 skipped / 0 quarantined", st)
	}
	if n, err := s.Len(); err != nil || n != 1 {
		t.Errorf("Len = %d, %v; want 1", n, err)
	}
}

func TestBadDigestRejected(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []string{"", "abc", "zz" + digestOf(nil)[2:]} {
		if _, _, err := s.Get(d); err == nil {
			t.Errorf("Get(%q): no error", d)
		}
		if err := s.Put(d, nil); err == nil {
			t.Errorf("Put(%q): no error", d)
		}
	}
}

// TestCorruptionQuarantined proves the hard promise of the store: no
// damaged entry is ever returned. Every corruption mode reads as a miss,
// the bytes land in quarantine/, and a fresh Put repairs the slot.
func TestCorruptionQuarantined(t *testing.T) {
	corruptions := []struct {
		name string
		mod  func(path string) error
	}{
		{"truncated", func(p string) error {
			data, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			return os.WriteFile(p, data[:len(data)/2], 0o644)
		}},
		{"bit flip", func(p string) error {
			data, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			data[len(data)-1] ^= 0x40
			return os.WriteFile(p, data, 0o644)
		}},
		{"bad magic", func(p string) error {
			return os.WriteFile(p, []byte("not-a-cas-file\n"), 0o644)
		}},
		{"future version", func(p string) error {
			data, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			return os.WriteFile(p, bytes.Replace(data, []byte("mlperf-cas 1"), []byte("mlperf-cas 99"), 1), 0o644)
		}},
		{"empty file", func(p string) error {
			return os.WriteFile(p, nil, 0o644)
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			payload := []byte("payload for " + tc.name)
			d := digestOf(payload)
			if err := s.Put(d, payload); err != nil {
				t.Fatal(err)
			}
			if err := tc.mod(s.path(d)); err != nil {
				t.Fatal(err)
			}
			got, ok, err := s.Get(d)
			if err != nil {
				t.Fatalf("corrupt entry surfaced an error: %v", err)
			}
			if ok {
				t.Fatalf("corrupt entry returned as a hit: %q", got)
			}
			if st := s.Stats(); st.Quarantined != 1 {
				t.Errorf("stats %+v, want 1 quarantined", st)
			}
			q, err := filepath.Glob(filepath.Join(dir, quarantineDir, d+".*"))
			if err != nil || len(q) != 1 {
				t.Errorf("quarantine evidence: %v, %v", q, err)
			}
			// The slot is reusable: a fresh Put and Get succeed.
			if err := s.Put(d, payload); err != nil {
				t.Fatal(err)
			}
			if _, ok, _ := s.Get(d); !ok {
				t.Error("slot unusable after quarantine + re-put")
			}
		})
	}
}

func TestEnvelopeRejectsLengthMismatch(t *testing.T) {
	env := encodeEnvelope([]byte("abc"))
	env = bytes.Replace(env, []byte("len 3"), []byte("len 2"), 1)
	if _, err := decodeEnvelope(env); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				payload := []byte(fmt.Sprintf("blob %d", i))
				d := digestOf(payload)
				if err := s.Put(d, payload); err != nil {
					t.Error(err)
					return
				}
				got, ok, err := s.Get(d)
				if err != nil || !ok || !bytes.Equal(got, payload) {
					t.Errorf("blob %d: ok=%v err=%v", i, ok, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if n2, err := s.Len(); err != nil || n2 != n {
		t.Errorf("Len = %d, %v; want %d", n2, err, n)
	}
}

// TestCrossStoreSharing is the cross-process story in miniature: two
// Store handles over one directory see each other's writes.
func TestCrossStoreSharing(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("shared")
	d := digestOf(payload)
	if err := a.Put(d, payload); err != nil {
		t.Fatal(err)
	}
	got, ok, err := b.Get(d)
	if err != nil || !ok || !bytes.Equal(got, payload) {
		t.Fatalf("second handle misses the first's write: ok=%v err=%v", ok, err)
	}
}

// TestQuarantineBounded proves repeated corruption cannot grow disk
// without limit: quarantine/ holds at most the configured cap, the
// oldest entries are dropped first, and the drops are counted.
func TestQuarantineBounded(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const limit = 5
	s.SetQuarantineLimit(limit)

	const rounds = 3 * limit
	var digests []string
	for i := 0; i < rounds; i++ {
		payload := []byte(fmt.Sprintf("payload %d", i))
		d := digestOf(payload)
		digests = append(digests, d)
		if err := s.Put(d, payload); err != nil {
			t.Fatal(err)
		}
		// Corrupt it in place, then read it back: the damaged entry is
		// quarantined, and quarantine/ is pruned past the cap.
		if err := os.WriteFile(s.path(d), []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok, err := s.Get(d); err != nil || ok {
			t.Fatalf("round %d: corrupt entry ok=%v err=%v", i, ok, err)
		}
	}

	q, err := filepath.Glob(filepath.Join(dir, quarantineDir, "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(q) > limit {
		t.Errorf("quarantine holds %d entries, cap is %d", len(q), limit)
	}
	st := s.Stats()
	if st.Quarantined != rounds {
		t.Errorf("quarantined %d, want %d", st.Quarantined, rounds)
	}
	if want := int64(rounds - limit); st.QuarantineDropped != want {
		t.Errorf("dropped %d, want %d", st.QuarantineDropped, want)
	}
	// The survivors are the newest entries.
	for _, d := range digests[:rounds-limit] {
		if m, _ := filepath.Glob(filepath.Join(dir, quarantineDir, d+".*")); len(m) != 0 {
			t.Errorf("old quarantined entry %s survived pruning", d)
		}
	}
	for _, d := range digests[rounds-limit:] {
		if m, _ := filepath.Glob(filepath.Join(dir, quarantineDir, d+".*")); len(m) != 1 {
			t.Errorf("new quarantined entry %s was dropped", d)
		}
	}
}

// TestQuarantineLimitKnob pins the knob's contract: 0 is the default
// cap, negatives disable pruning.
func TestQuarantineLimitKnob(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if got := s.QuarantineLimit(); got != DefaultQuarantineLimit {
		t.Errorf("default limit %d, want %d", got, DefaultQuarantineLimit)
	}
	s.SetQuarantineLimit(-1)
	if got := s.QuarantineLimit(); got != -1 {
		t.Errorf("unbounded limit %d, want -1", got)
	}
	s.SetQuarantineLimit(7)
	if got := s.QuarantineLimit(); got != 7 {
		t.Errorf("limit %d, want 7", got)
	}
}

// fileSize reports the on-disk envelope size of one stored digest.
func fileSize(t *testing.T, s *Store, d string) int64 {
	t.Helper()
	info, err := os.Stat(s.path(d))
	if err != nil {
		t.Fatal(err)
	}
	return info.Size()
}

// age backdates a stored entry's mtime so eviction order is
// deterministic regardless of filesystem timestamp granularity.
func age(t *testing.T, s *Store, d string, secondsAgo int) {
	t.Helper()
	when := time.Now().Add(-time.Duration(secondsAgo) * time.Second)
	if err := os.Chtimes(s.path(d), when, when); err != nil {
		t.Fatal(err)
	}
}

// SetMaxBytes on an over-capacity store evicts oldest-first until it
// fits, counting each removal — and only counts removals of intact
// entries, under Evictions.
func TestSetMaxBytesEvictsOldestFirst(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var digests []string
	for i := 0; i < 5; i++ {
		p := []byte(fmt.Sprintf(`{"cell":%d,"pad":"0123456789abcdef"}`, i))
		d := digestOf(p)
		if err := s.Put(d, p); err != nil {
			t.Fatal(err)
		}
		age(t, s, d, 100-i) // entry 0 oldest, entry 4 newest
		digests = append(digests, d)
	}
	size := fileSize(t, s, digests[0])

	// Room for two entries plus slack smaller than a third.
	s.SetMaxBytes(2*size + size/2)

	st := s.Stats()
	if st.Evictions != 3 {
		t.Fatalf("evictions = %d, want 3", st.Evictions)
	}
	for i, d := range digests {
		_, ok, err := s.Get(d)
		if err != nil {
			t.Fatal(err)
		}
		if want := i >= 3; ok != want {
			t.Fatalf("entry %d present=%v, want %v (oldest three must go first)", i, ok, want)
		}
	}
	if st.Quarantined != 0 {
		t.Fatalf("capacity eviction bled into quarantined: %+v", st)
	}
}

// A Put that overflows the cap triggers eviction on the spot; the entry
// just written survives (it is the newest).
func TestPutOverflowEvictsOnWriteThrough(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	put := func(i, ageS int) string {
		p := []byte(fmt.Sprintf(`{"cell":%d,"pad":"0123456789abcdef"}`, i))
		d := digestOf(p)
		if err := s.Put(d, p); err != nil {
			t.Fatal(err)
		}
		age(t, s, d, ageS)
		return d
	}
	d0 := put(0, 100)
	size := fileSize(t, s, d0)
	s.SetMaxBytes(2*size + size/2)
	d1 := put(1, 50)
	if st := s.Stats(); st.Evictions != 0 {
		t.Fatalf("under-cap puts evicted: %+v", st)
	}
	d2 := put(2, 0)

	st := s.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1 (the overflow put)", st.Evictions)
	}
	if _, ok, _ := s.Get(d0); ok {
		t.Fatal("oldest entry survived the overflow")
	}
	for _, d := range []string{d1, d2} {
		if _, ok, _ := s.Get(d); !ok {
			t.Fatalf("entry %s evicted though it fit", d[:8])
		}
	}
}

// Quarantines are not evictions: a corrupt entry moved aside must count
// under Quarantined only, and quarantined bytes do not occupy capacity.
func TestQuarantineDoesNotCountAsEviction(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	good := []byte(`{"cell":"good"}`)
	bad := []byte(`{"cell":"bad"}`)
	gd, bd := digestOf(good), digestOf(bad)
	for d, p := range map[string][]byte{gd: good, bd: bad} {
		if err := s.Put(d, p); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt one entry on disk, then read it: quarantine path.
	if err := os.WriteFile(s.path(bd), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(bd); ok || err != nil {
		t.Fatalf("corrupt get: ok=%v err=%v", ok, err)
	}

	// A cap large enough for the surviving entry: the quarantined bytes
	// must neither count toward capacity nor be deleted by the scan.
	s.SetMaxBytes(2 * fileSize(t, s, gd))
	st := s.Stats()
	if st.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1", st.Quarantined)
	}
	if st.Evictions != 0 {
		t.Fatalf("evictions = %d, want 0 — quarantines must not count as evictions", st.Evictions)
	}
	if _, ok, _ := s.Get(gd); !ok {
		t.Fatal("intact entry lost")
	}
	qdir := filepath.Join(s.Dir(), quarantineDir)
	entries, err := os.ReadDir(qdir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("quarantine dir entries = %d (%v), want 1 — eviction must not touch quarantine", len(entries), err)
	}
}
