// Package cas is a minimal on-disk content-addressed store: fixed-size
// hex digests name immutable blobs, writes are atomic (write to a temp
// file, then rename into place), and reads verify a checksummed,
// versioned envelope so a corrupt or truncated entry is never returned —
// it is quarantined and reported as a miss instead. The store is the
// persistent tier behind the sweep engine's memo cache: a digest is the
// canonical content address of one sweep cell, and the blob is that
// cell's serialized record, so repeated paper-scale grids across
// processes and runs replay from disk instead of re-simulating.
//
// The envelope is deliberately strict. Every entry starts with a magic
// line naming the codec version, a SHA-256 checksum of the payload, and
// the payload length; Get re-verifies all three. Anything that fails —
// bad magic, unknown version, short payload, checksum mismatch — is
// moved into the store's quarantine/ directory (preserving the evidence
// for inspection) and treated as a cache miss, so a crashed writer or a
// flipped bit costs one re-simulation, never a wrong result.
package cas

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// EnvelopeVersion is the on-disk entry format version. Get rejects (and
// quarantines) any other version: a format change must not be silently
// misread as data.
const EnvelopeVersion = 1

// magic is the first envelope line, including the version.
const magic = "mlperf-cas"

// quarantineDir is the subdirectory corrupt entries are moved into.
const quarantineDir = "quarantine"

// DefaultQuarantineLimit bounds how many quarantined entries a store
// keeps. Quarantine preserves evidence, but evidence must not become a
// disk leak: an attacker (or a flaky disk) feeding the store corrupt
// entries forever would otherwise grow quarantine/ without limit. Beyond
// the cap the oldest entries are dropped.
const DefaultQuarantineLimit = 64

// ErrCorrupt marks an entry that failed envelope verification; callers
// normally never see it (Get turns it into a miss after quarantining)
// but Verify returns it for inspection tools.
var ErrCorrupt = errors.New("cas: corrupt entry")

// Stats counts a store's traffic since Open. All counters are monotone.
type Stats struct {
	// Hits counts Gets that returned a verified payload.
	Hits int64
	// Misses counts Gets that found no entry (including entries lost to
	// quarantine on the same call).
	Misses int64
	// Puts counts blobs written (idempotent re-puts of an existing
	// digest are not counted; see PutsSkipped).
	Puts int64
	// PutsSkipped counts Puts that found the digest already stored and
	// wrote nothing — the content-addressed fast path.
	PutsSkipped int64
	// Quarantined counts entries evicted into quarantine/ after failing
	// envelope verification.
	Quarantined int64
	// QuarantineDropped counts quarantined entries discarded because the
	// quarantine directory exceeded its cap (oldest dropped first).
	QuarantineDropped int64
	// Evictions counts intact entries removed to keep the store under its
	// byte capacity (SetMaxBytes), oldest first. Distinct from Quarantined:
	// an eviction is a deliberate capacity decision about a good entry, a
	// quarantine is a verification failure — conflating them makes a
	// corruption storm read as a capacity problem and vice versa.
	Evictions int64
}

// Store is an on-disk content-addressed blob store rooted at one
// directory. It is safe for concurrent use by multiple goroutines and —
// thanks to atomic rename and content addressing — by multiple
// processes sharing the directory.
type Store struct {
	dir string

	hits, misses, puts, putsSkipped, quarantined, quarantineDropped atomic.Int64
	evictions                                                       atomic.Int64

	// qmu serializes quarantine moves and the prune that follows, so two
	// goroutines quarantining at once cannot both skip pruning.
	qmu sync.Mutex
	// quarantineLimit caps quarantine/ entries (0 = DefaultQuarantineLimit,
	// negative = unlimited).
	quarantineLimit atomic.Int64

	// maxBytes caps the summed size of intact entries (<= 0 = unbounded).
	maxBytes atomic.Int64
	// approxBytes tracks the store's size as this process sees it: seeded
	// by the scan in SetMaxBytes, advanced by each Put, and re-anchored to
	// the authoritative on-disk total at every eviction scan. With several
	// processes sharing the directory each one's estimate drifts between
	// scans, so the cap is enforced eventually, not instantaneously —
	// which is the right trade for a cache.
	approxBytes atomic.Int64
	// emu serializes eviction scans so concurrent over-cap Puts do not
	// race each other deleting files.
	emu sync.Mutex
}

// Open creates (if needed) and returns the store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("cas: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cas: %w", err)
	}
	return &Store{dir: dir}, nil
}

// SetQuarantineLimit caps how many quarantined entries are retained
// (oldest dropped beyond the cap). 0 restores DefaultQuarantineLimit;
// a negative limit disables pruning (unbounded, test use only).
func (s *Store) SetQuarantineLimit(n int) { s.quarantineLimit.Store(int64(n)) }

// QuarantineLimit reports the effective cap (-1 = unbounded).
func (s *Store) QuarantineLimit() int {
	n := int(s.quarantineLimit.Load())
	if n == 0 {
		return DefaultQuarantineLimit
	}
	if n < 0 {
		return -1
	}
	return n
}

// SetMaxBytes caps the summed size of intact entries (envelope bytes on
// disk; quarantined entries do not count — they have their own cap).
// When a Put pushes the store past the cap, the oldest entries (by
// modification time) are evicted until it fits again, each counted in
// Stats.Evictions. n <= 0 removes the cap. Setting a cap evicts
// immediately if the store already exceeds it.
func (s *Store) SetMaxBytes(n int64) {
	s.maxBytes.Store(n)
	if n > 0 {
		s.evictToCap()
	}
}

// MaxBytes reports the capacity cap (<= 0 = unbounded).
func (s *Store) MaxBytes() int64 { return s.maxBytes.Load() }

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// validDigest vets the hex digest used as a content address.
func validDigest(digest string) error {
	if len(digest) != sha256.Size*2 {
		return fmt.Errorf("cas: digest %q is not a sha256 hex digest", digest)
	}
	if _, err := hex.DecodeString(digest); err != nil {
		return fmt.Errorf("cas: digest %q is not hex: %v", digest, err)
	}
	return nil
}

// path maps a digest to its entry file, fanned out over 256 prefix
// directories so huge grids do not pile every entry into one dir.
func (s *Store) path(digest string) string {
	return filepath.Join(s.dir, digest[:2], digest)
}

// Get returns the payload stored under digest. ok is false on a miss;
// a corrupt or truncated entry is quarantined and reported as a miss.
// The returned error is reserved for environmental failures (bad
// digest, unreadable directory), never for bad content.
func (s *Store) Get(digest string) (payload []byte, ok bool, err error) {
	if err := validDigest(digest); err != nil {
		return nil, false, err
	}
	data, rerr := os.ReadFile(s.path(digest))
	if rerr != nil {
		if errors.Is(rerr, fs.ErrNotExist) {
			s.misses.Add(1)
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("cas: %w", rerr)
	}
	payload, verr := decodeEnvelope(data)
	if verr != nil {
		s.Quarantine(digest)
		s.misses.Add(1)
		return nil, false, nil
	}
	s.hits.Add(1)
	return payload, true, nil
}

// Put stores payload under digest, atomically: the envelope is written
// to a temp file in the store and renamed into place, so readers (and
// concurrent writers in other processes) only ever observe absent or
// complete entries. Re-putting an existing digest is a cheap no-op —
// content addressing guarantees the bytes are the same.
func (s *Store) Put(digest string, payload []byte) error {
	if err := validDigest(digest); err != nil {
		return err
	}
	dst := s.path(digest)
	if _, err := os.Stat(dst); err == nil {
		s.putsSkipped.Add(1)
		return nil
	}
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("cas: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), ".put-*")
	if err != nil {
		return fmt.Errorf("cas: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	env := encodeEnvelope(payload)
	if _, err := tmp.Write(env); err != nil {
		tmp.Close()
		return fmt.Errorf("cas: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("cas: %w", err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		return fmt.Errorf("cas: %w", err)
	}
	s.puts.Add(1)
	// Write-through capacity check: only a successful write can push the
	// store over its cap, so this is the one place eviction triggers.
	if limit := s.maxBytes.Load(); limit > 0 && s.approxBytes.Add(int64(len(env))) > limit {
		s.evictToCap()
	}
	return nil
}

// evictToCap walks the store, re-anchors the size estimate to the
// authoritative on-disk total, and — if it exceeds the cap — removes the
// oldest entries (modification time, name as tiebreak) until it fits.
// The entry just written is by construction the newest, so it survives
// any eviction the cap allows. Quarantine and in-flight temp files are
// invisible to the scan.
func (s *Store) evictToCap() {
	s.emu.Lock()
	defer s.emu.Unlock()
	limit := s.maxBytes.Load()
	if limit <= 0 {
		return
	}
	type aged struct {
		path string
		size int64
		when time.Time
	}
	var files []aged
	var total int64
	dirs, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, d := range dirs {
		if !d.IsDir() || d.Name() == quarantineDir {
			continue
		}
		entries, err := os.ReadDir(filepath.Join(s.dir, d.Name()))
		if err != nil {
			continue
		}
		for _, e := range entries {
			if e.IsDir() || validDigest(e.Name()) != nil {
				continue
			}
			info, err := e.Info()
			if err != nil {
				continue
			}
			files = append(files, aged{
				path: filepath.Join(s.dir, d.Name(), e.Name()),
				size: info.Size(),
				when: info.ModTime(),
			})
			total += info.Size()
		}
	}
	if total > limit {
		sort.Slice(files, func(i, j int) bool {
			if !files[i].when.Equal(files[j].when) {
				return files[i].when.Before(files[j].when)
			}
			return files[i].path < files[j].path
		})
		for _, f := range files {
			if total <= limit {
				break
			}
			if os.Remove(f.path) == nil {
				total -= f.size
				s.evictions.Add(1)
			}
		}
	}
	s.approxBytes.Store(total)
}

// Quarantine evicts the entry under digest into quarantine/, preserving
// the bytes for inspection. Callers use it when the payload verified at
// the envelope layer but failed a stricter application-level decode
// (Get quarantines envelope failures itself). Missing entries are a
// no-op.
func (s *Store) Quarantine(digest string) {
	if validDigest(digest) != nil {
		return
	}
	qdir := filepath.Join(s.dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return
	}
	s.qmu.Lock()
	defer s.qmu.Unlock()
	dst := filepath.Join(qdir, digest+"."+strconv.FormatInt(time.Now().UnixNano(), 10))
	if err := os.Rename(s.path(digest), dst); err == nil {
		s.quarantined.Add(1)
	}
	s.pruneQuarantineLocked(qdir)
}

// pruneQuarantineLocked drops the oldest quarantined entries beyond the
// cap. Quarantine names end in the nanosecond timestamp of the move
// (rename preserves the file's own mtime, so ModTime would reflect when
// the corrupt entry was written, not when it was caught); entries
// without a parseable suffix sort first and go before dated ones.
// Callers hold qmu.
func (s *Store) pruneQuarantineLocked(qdir string) {
	limit := s.QuarantineLimit()
	if limit < 0 {
		return
	}
	entries, err := os.ReadDir(qdir)
	if err != nil || len(entries) <= limit {
		return
	}
	type aged struct {
		name string
		when int64
	}
	files := make([]aged, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		var when int64
		if i := strings.LastIndexByte(e.Name(), '.'); i >= 0 {
			when, _ = strconv.ParseInt(e.Name()[i+1:], 10, 64)
		}
		files = append(files, aged{name: e.Name(), when: when})
	}
	if len(files) <= limit {
		return
	}
	sort.Slice(files, func(i, j int) bool {
		if files[i].when != files[j].when {
			return files[i].when < files[j].when
		}
		return files[i].name < files[j].name
	})
	for _, f := range files[:len(files)-limit] {
		if os.Remove(filepath.Join(qdir, f.name)) == nil {
			s.quarantineDropped.Add(1)
		}
	}
}

// Len walks the store and counts intact-looking entries (quarantined
// ones excluded). It is an inspection helper, not a hot path.
func (s *Store) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == quarantineDir && filepath.Dir(path) == s.dir {
				return filepath.SkipDir
			}
			return nil
		}
		if validDigest(d.Name()) == nil {
			n++
		}
		return nil
	})
	return n, err
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:              s.hits.Load(),
		Misses:            s.misses.Load(),
		Puts:              s.puts.Load(),
		PutsSkipped:       s.putsSkipped.Load(),
		Quarantined:       s.quarantined.Load(),
		QuarantineDropped: s.quarantineDropped.Load(),
		Evictions:         s.evictions.Load(),
	}
}

// encodeEnvelope wraps a payload in the versioned, checksummed entry
// format:
//
//	mlperf-cas <version>\n
//	sha256 <hex of payload>\n
//	len <decimal payload length>\n
//	\n
//	<payload bytes>
func encodeEnvelope(payload []byte) []byte {
	sum := sha256.Sum256(payload)
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%s %d\n", magic, EnvelopeVersion)
	fmt.Fprintf(&buf, "sha256 %s\n", hex.EncodeToString(sum[:]))
	fmt.Fprintf(&buf, "len %d\n\n", len(payload))
	buf.Write(payload)
	return buf.Bytes()
}

// decodeEnvelope verifies magic, version, length and checksum, returning
// the payload or ErrCorrupt (wrapped with the reason).
func decodeEnvelope(data []byte) ([]byte, error) {
	r := bufio.NewReader(bytes.NewReader(data))
	line := func() (string, error) {
		l, err := r.ReadString('\n')
		if err != nil {
			return "", fmt.Errorf("%w: truncated header", ErrCorrupt)
		}
		return l[:len(l)-1], nil
	}
	head, err := line()
	if err != nil {
		return nil, err
	}
	var version int
	if _, err := fmt.Sscanf(head, magic+" %d", &version); err != nil {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, head)
	}
	if version != EnvelopeVersion {
		return nil, fmt.Errorf("%w: envelope version %d, want %d", ErrCorrupt, version, EnvelopeVersion)
	}
	sumLine, err := line()
	if err != nil {
		return nil, err
	}
	wantSum, ok := strings.CutPrefix(sumLine, "sha256 ")
	if !ok || len(wantSum) != sha256.Size*2 {
		return nil, fmt.Errorf("%w: bad checksum line %q", ErrCorrupt, sumLine)
	}
	lenLine, err := line()
	if err != nil {
		return nil, err
	}
	lenStr, ok := strings.CutPrefix(lenLine, "len ")
	if !ok {
		return nil, fmt.Errorf("%w: bad length line %q", ErrCorrupt, lenLine)
	}
	want, err := strconv.Atoi(lenStr)
	if err != nil || want < 0 {
		return nil, fmt.Errorf("%w: bad length %q", ErrCorrupt, lenStr)
	}
	if blank, err := line(); err != nil {
		return nil, err
	} else if blank != "" {
		return nil, fmt.Errorf("%w: missing header separator", ErrCorrupt)
	}
	payload, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: unreadable payload", ErrCorrupt)
	}
	if len(payload) != want {
		return nil, fmt.Errorf("%w: payload %d bytes, header says %d", ErrCorrupt, len(payload), want)
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != wantSum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return payload, nil
}
