package profile

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// DstatSample is one dstat row: host-side statistics at a point in time.
type DstatSample struct {
	// TimeSec is seconds since the run started.
	TimeSec float64
	// CPUPct is total host CPU utilization (0-100).
	CPUPct float64
	// MemUsedMB is host memory in use.
	MemUsedMB float64
	// DiskReadMBs is dataset read bandwidth from storage.
	DiskReadMBs float64
	// GPUPct mirrors the dstat NVIDIA plugin: summed GPU utilization.
	GPUPct float64
}

// DmonSample is one nvidia-smi dmon row: per-GPU statistics.
type DmonSample struct {
	TimeSec float64
	GPU     int
	// SMPct is streaming-multiprocessor utilization.
	SMPct float64
	// MemUsedMB is device memory in use.
	MemUsedMB float64
	// PCIeMbps and NVLinkMbps are bus rates for this GPU.
	PCIeMbps, NVLinkMbps float64
}

// Sampler turns one profiled run into tool-shaped time series. Real
// tools sample a noisy process; the simulator's steady state plus a
// short warmup ramp reproduces the shape the paper's figures average
// over. The sampler never simulates: both analogs read the Profile a
// single sim.RunObserved call collected, so dstat and dmon rows describe
// the same run (the paper's "one run, many tools" protocol).
type Sampler struct {
	// Interval between samples in seconds (dstat's default is 1s).
	Interval float64
	// Warmup is the ramp-up time before steady state.
	Warmup float64
}

// NewSampler returns a sampler with tool-default cadence.
func NewSampler() *Sampler { return &Sampler{Interval: 1, Warmup: 5} }

// Dstat derives `duration` seconds of host-side samples from the run.
func (s *Sampler) Dstat(p *Profile, duration float64) []DstatSample {
	res := p.Result
	interval := s.Interval
	if interval <= 0 {
		interval = 1
	}
	var out []DstatSample
	epochSeconds := float64(res.StepsPerEpoch) * res.StepTime
	diskRate := float64(p.Bench.Job.Data.DiskBytes) / 1e6 / max(epochSeconds, 1)
	for t := 0.0; t <= duration; t += interval {
		ramp := 1.0
		if s.Warmup > 0 && t < s.Warmup {
			ramp = t / s.Warmup
		}
		out = append(out, DstatSample{
			TimeSec:     t,
			CPUPct:      float64(res.CPUUtil) * ramp,
			MemUsedMB:   res.DRAMBytes.MB() * (0.5 + 0.5*ramp),
			DiskReadMBs: diskRate * ramp,
			GPUPct:      float64(res.GPUUtilTotal) * ramp,
		})
	}
	return out
}

// Dmon derives `duration` seconds of per-GPU samples from the run.
func (s *Sampler) Dmon(p *Profile, duration float64) []DmonSample {
	res := p.Result
	gpus := p.GPUs
	interval := s.Interval
	if interval <= 0 {
		interval = 1
	}
	perGPUUtil := float64(res.GPUUtilTotal) / float64(gpus)
	perGPUMem := res.HBMBytes.MB() / float64(gpus)
	perGPUPCIe := res.PCIeRate.Mbps() / float64(gpus)
	perGPUNVL := res.NVLinkRate.Mbps() / float64(gpus)
	var out []DmonSample
	for t := 0.0; t <= duration; t += interval {
		ramp := 1.0
		if s.Warmup > 0 && t < s.Warmup {
			ramp = t / s.Warmup
		}
		for g := 0; g < gpus; g++ {
			out = append(out, DmonSample{
				TimeSec:    t,
				GPU:        g,
				SMPct:      perGPUUtil * ramp,
				MemUsedMB:  perGPUMem,
				PCIeMbps:   perGPUPCIe * ramp,
				NVLinkMbps: perGPUNVL * ramp,
			})
		}
	}
	return out
}

// WriteDstatCSV exports samples the way dstat's --output does.
func WriteDstatCSV(w io.Writer, samples []DstatSample) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", "cpu_pct", "mem_used_mb", "disk_read_mbs", "gpu_pct"}); err != nil {
		return err
	}
	for _, s := range samples {
		rec := []string{
			f(s.TimeSec), f(s.CPUPct), f(s.MemUsedMB), f(s.DiskReadMBs), f(s.GPUPct),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteDmonCSV exports per-GPU samples.
func WriteDmonCSV(w io.Writer, samples []DmonSample) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", "gpu", "sm_pct", "mem_used_mb", "pcie_mbps", "nvlink_mbps"}); err != nil {
		return err
	}
	for _, s := range samples {
		rec := []string{
			f(s.TimeSec), strconv.Itoa(s.GPU), f(s.SMPct), f(s.MemUsedMB), f(s.PCIeMbps), f(s.NVLinkMbps),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteKernelCSV exports an nvprof profile.
func WriteKernelCSV(w io.Writer, recs []KernelRecord) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"kernel", "invocations", "total_time_s", "gflops", "mem_mb"}); err != nil {
		return err
	}
	for _, r := range recs {
		rec := []string{
			r.Name, strconv.Itoa(r.Invocations), f(r.TotalTime), f(r.FLOPs.G()), f(r.MemBytes.MB()),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return fmt.Sprintf("%.4f", v) }
