package profile

import (
	"bytes"
	"strings"
	"testing"

	"mlperf/internal/hw"
	"mlperf/internal/workload"
)

func TestCharacterizeAllSuites(t *testing.T) {
	sys := hw.C4140K()
	chars, err := CharacterizeAll(workload.All(), sys, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(chars) != 13 {
		t.Fatalf("characterized %d benchmarks, want 13", len(chars))
	}
	for _, c := range chars {
		for i, v := range c.Values {
			if v < 0 {
				t.Errorf("%s: characteristic %s = %v < 0", c.Bench, CharacteristicNames[i], v)
			}
		}
	}
}

func TestCharacteristicSeparation(t *testing.T) {
	// The Figure 1a driver: MLPerf benchmarks' GPU memory footprint
	// dwarfs DeepBench kernels'.
	sys := hw.C4140K()
	get := func(name string) Characteristics {
		b, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		c, err := Characterize(b, sys, 1)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	mlperf := get("MLPf_Res50_TF")
	deep := get("Deep_GEMM_Cu")
	const hbmIdx = 4
	if mlperf.Values[hbmIdx] < 4*deep.Values[hbmIdx] {
		t.Errorf("Res50 HBM %v should dwarf DeepBench GEMM HBM %v",
			mlperf.Values[hbmIdx], deep.Values[hbmIdx])
	}
	// Deep_Red_Cu has zero FLOP throughput (the paper's PC2 outlier).
	red := get("Deep_Red_Cu")
	const flopIdx = 5
	if red.Values[flopIdx] != 0 {
		t.Errorf("Deep_Red FLOP throughput = %v, want 0", red.Values[flopIdx])
	}
}

func TestNvprofRecords(t *testing.T) {
	b, err := workload.ByName("MLPf_Res50_TF")
	if err != nil {
		t.Fatal(err)
	}
	g := hw.TeslaV100SXM2
	recs := Nvprof(b, &g, 10)
	if len(recs) != len(b.Job.Net.Layers) {
		t.Fatalf("%d records for %d layers", len(recs), len(b.Job.Net.Layers))
	}
	for _, r := range recs {
		if r.Invocations != 30 {
			t.Errorf("%s: %d invocations, want 30", r.Name, r.Invocations)
		}
		if r.TotalTime <= 0 {
			t.Errorf("%s: non-positive time", r.Name)
		}
	}
}

func TestRooflinePointConsistency(t *testing.T) {
	b, err := workload.ByName("MLPf_Res50_TF")
	if err != nil {
		t.Fatal(err)
	}
	g := hw.TeslaV100SXM2
	recs := Nvprof(b, &g, 4)
	ai, rate := RooflinePoint(recs)
	if ai <= 0 || rate <= 0 {
		t.Fatalf("degenerate roofline point (%v, %v)", ai, rate)
	}
	// Achieved rate can never exceed the tensor-core peak.
	if rate > g.PeakAt(hw.TensorFP16) {
		t.Errorf("achieved %v exceeds peak %v", rate, g.PeakAt(hw.TensorFP16))
	}
	if _, r := RooflinePoint(nil); r != 0 {
		t.Error("empty profile should give zero rate")
	}
}

func TestDstatSamples(t *testing.T) {
	b, err := workload.ByName("MLPf_NCF_Py")
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler()
	samples, err := s.Dstat(b, hw.C4140K(), 2, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 31 {
		t.Fatalf("%d samples for 30s at 1Hz, want 31", len(samples))
	}
	// Warmup ramp: first sample at zero, steady state later.
	if samples[0].CPUPct != 0 {
		t.Errorf("t=0 CPU = %v, want 0 during ramp", samples[0].CPUPct)
	}
	last := samples[len(samples)-1]
	if last.CPUPct <= 0 || last.GPUPct <= 0 {
		t.Error("steady-state samples should be positive")
	}
}

func TestDmonPerGPU(t *testing.T) {
	b, err := workload.ByName("MLPf_Res50_TF")
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler()
	samples, err := s.Dmon(b, hw.C4140K(), 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	gpusSeen := map[int]bool{}
	for _, smp := range samples {
		gpusSeen[smp.GPU] = true
		if smp.SMPct < 0 || smp.SMPct > 100 {
			t.Errorf("SM%% = %v out of range", smp.SMPct)
		}
	}
	if len(gpusSeen) != 4 {
		t.Errorf("saw %d GPUs, want 4", len(gpusSeen))
	}
}

func TestCSVExports(t *testing.T) {
	b, err := workload.ByName("MLPf_SSD_Py")
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler()
	ds, err := s.Dstat(b, hw.C4140K(), 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDstatCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(ds)+1 {
		t.Errorf("CSV has %d lines, want %d", len(lines), len(ds)+1)
	}
	if !strings.HasPrefix(lines[0], "time_s,cpu_pct") {
		t.Errorf("bad header: %s", lines[0])
	}

	dm, err := s.Dmon(b, hw.C4140K(), 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteDmonCSV(&buf, dm); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "nvlink_mbps") {
		t.Error("dmon CSV missing nvlink column")
	}

	g := hw.TeslaV100SXM2
	buf.Reset()
	if err := WriteKernelCSV(&buf, Nvprof(b, &g, 1)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "kernel,invocations") {
		t.Error("kernel CSV missing header")
	}
}
