package profile

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"mlperf/internal/fault"
	"mlperf/internal/hw"
	"mlperf/internal/sim"
	"mlperf/internal/workload"
)

func TestCharacterizeAllSuites(t *testing.T) {
	sys := hw.C4140K()
	chars, err := CharacterizeAll(workload.All(), sys, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(chars) != 13 {
		t.Fatalf("characterized %d benchmarks, want 13", len(chars))
	}
	for _, c := range chars {
		for i, v := range c.Values {
			if v < 0 {
				t.Errorf("%s: characteristic %s = %v < 0", c.Bench, CharacteristicNames[i], v)
			}
		}
	}
}

func TestCharacteristicSeparation(t *testing.T) {
	// The Figure 1a driver: MLPerf benchmarks' GPU memory footprint
	// dwarfs DeepBench kernels'.
	sys := hw.C4140K()
	get := func(name string) Characteristics {
		b, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		c, err := Characterize(b, sys, 1)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	mlperf := get("MLPf_Res50_TF")
	deep := get("Deep_GEMM_Cu")
	const hbmIdx = 4
	if mlperf.Values[hbmIdx] < 4*deep.Values[hbmIdx] {
		t.Errorf("Res50 HBM %v should dwarf DeepBench GEMM HBM %v",
			mlperf.Values[hbmIdx], deep.Values[hbmIdx])
	}
	// Deep_Red_Cu has zero FLOP throughput (the paper's PC2 outlier).
	red := get("Deep_Red_Cu")
	const flopIdx = 5
	if red.Values[flopIdx] != 0 {
		t.Errorf("Deep_Red FLOP throughput = %v, want 0", red.Values[flopIdx])
	}
}

func TestNvprofRecords(t *testing.T) {
	b, err := workload.ByName("MLPf_Res50_TF")
	if err != nil {
		t.Fatal(err)
	}
	g := hw.TeslaV100SXM2
	recs := Nvprof(b, &g, 10)
	if len(recs) != len(b.Job.Net.Layers) {
		t.Fatalf("%d records for %d layers", len(recs), len(b.Job.Net.Layers))
	}
	for _, r := range recs {
		if r.Invocations != 30 {
			t.Errorf("%s: %d invocations, want 30", r.Name, r.Invocations)
		}
		if r.TotalTime <= 0 {
			t.Errorf("%s: non-positive time", r.Name)
		}
	}
}

func TestRooflinePointConsistency(t *testing.T) {
	b, err := workload.ByName("MLPf_Res50_TF")
	if err != nil {
		t.Fatal(err)
	}
	g := hw.TeslaV100SXM2
	recs := Nvprof(b, &g, 4)
	ai, rate := RooflinePoint(recs)
	if ai <= 0 || rate <= 0 {
		t.Fatalf("degenerate roofline point (%v, %v)", ai, rate)
	}
	// Achieved rate can never exceed the tensor-core peak.
	if rate > g.PeakAt(hw.TensorFP16) {
		t.Errorf("achieved %v exceeds peak %v", rate, g.PeakAt(hw.TensorFP16))
	}
	if _, r := RooflinePoint(nil); r != 0 {
		t.Error("empty profile should give zero rate")
	}
}

func collect(t *testing.T, name string, gpus int) *Profile {
	t.Helper()
	b, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Collect(b, hw.C4140K(), gpus)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCollectOneRun(t *testing.T) {
	p := collect(t, "MLPf_Res50_TF", 2)
	if p.Result == nil || len(p.Events) == 0 {
		t.Fatal("profile missing result or event stream")
	}
	if p.GPUs != 2 {
		t.Errorf("realized GPU count %d, want 2", p.GPUs)
	}
	if p.Timeline() != p.Result.Timeline {
		t.Error("Timeline() should hand back the run's timeline, not a copy")
	}
	if recs := p.Kernels(5); len(recs) == 0 {
		t.Error("profile produced no kernel records")
	}
	// Requests beyond the chassis clamp, mirroring the simulator.
	over := collect(t, "MLPf_Res50_TF", 99)
	if over.GPUs != hw.C4140K().GPUCount {
		t.Errorf("over-request realized %d GPUs, want chassis max %d", over.GPUs, hw.C4140K().GPUCount)
	}
}

// TestSamplersMatchOneRun is the one-run equivalence contract: dstat and
// dmon samples derived from a Collect'd profile must match values computed
// from an independent sim.Run of the same configuration — proving the
// sampler adds no second simulation of its own.
func TestSamplersMatchOneRun(t *testing.T) {
	b, err := workload.ByName("MLPf_Res50_TF")
	if err != nil {
		t.Fatal(err)
	}
	sys := hw.C4140K()
	p, err := Collect(b, sys, 4)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sim.Run(sim.Config{System: sys, GPUCount: 4, Job: b.Job})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler()
	ds := s.Dstat(p, 30)
	steady := ds[len(ds)-1]
	if steady.CPUPct != float64(ref.CPUUtil) {
		t.Errorf("dstat steady CPU %v != reference run %v", steady.CPUPct, ref.CPUUtil)
	}
	if steady.GPUPct != float64(ref.GPUUtilTotal) {
		t.Errorf("dstat steady GPU %v != reference run %v", steady.GPUPct, ref.GPUUtilTotal)
	}
	dm := s.Dmon(p, 30)
	last := dm[len(dm)-1]
	if want := float64(ref.GPUUtilTotal) / 4; last.SMPct != want {
		t.Errorf("dmon steady SM%% %v != reference %v", last.SMPct, want)
	}
	if want := ref.PCIeRate.Mbps() / 4; last.PCIeMbps != want {
		t.Errorf("dmon steady PCIe %v != reference %v", last.PCIeMbps, want)
	}
	// And the event stream the samplers ride on really is from one run:
	// its step-done count matches the simulated step count.
	steps := 0
	for _, ev := range p.Events {
		if ev.Kind == sim.EvStepDone {
			steps++
		}
	}
	if steps == 0 {
		t.Error("profile event stream has no step-done markers")
	}
}

func TestDstatSamples(t *testing.T) {
	p := collect(t, "MLPf_NCF_Py", 2)
	s := NewSampler()
	samples := s.Dstat(p, 30)
	if len(samples) != 31 {
		t.Fatalf("%d samples for 30s at 1Hz, want 31", len(samples))
	}
	// Warmup ramp: first sample at zero, steady state later.
	if samples[0].CPUPct != 0 {
		t.Errorf("t=0 CPU = %v, want 0 during ramp", samples[0].CPUPct)
	}
	last := samples[len(samples)-1]
	if last.CPUPct <= 0 || last.GPUPct <= 0 {
		t.Error("steady-state samples should be positive")
	}
}

func TestDmonPerGPU(t *testing.T) {
	p := collect(t, "MLPf_Res50_TF", 4)
	s := NewSampler()
	samples := s.Dmon(p, 10)
	gpusSeen := map[int]bool{}
	for _, smp := range samples {
		gpusSeen[smp.GPU] = true
		if smp.SMPct < 0 || smp.SMPct > 100 {
			t.Errorf("SM%% = %v out of range", smp.SMPct)
		}
	}
	if len(gpusSeen) != 4 {
		t.Errorf("saw %d GPUs, want 4", len(gpusSeen))
	}
}

func TestCSVExports(t *testing.T) {
	p := collect(t, "MLPf_SSD_Py", 1)
	s := NewSampler()
	ds := s.Dstat(p, 5)
	var buf bytes.Buffer
	if err := WriteDstatCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(ds)+1 {
		t.Errorf("CSV has %d lines, want %d", len(lines), len(ds)+1)
	}
	if !strings.HasPrefix(lines[0], "time_s,cpu_pct") {
		t.Errorf("bad header: %s", lines[0])
	}

	dm := s.Dmon(collect(t, "MLPf_SSD_Py", 2), 3)
	buf.Reset()
	if err := WriteDmonCSV(&buf, dm); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "nvlink_mbps") {
		t.Error("dmon CSV missing nvlink column")
	}

	g := hw.TeslaV100SXM2
	buf.Reset()
	if err := WriteKernelCSV(&buf, Nvprof(p.Bench, &g, 1)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "kernel,invocations") {
		t.Error("kernel CSV missing header")
	}
}

// TestCollectWithFaultsTraceAndPhaseTotals pins the fault-aware profile
// path: the faults lane must reach the Chrome trace, and the phase
// counters must stay consistent with the event stream — summed per-kind
// durations reproduce the timeline's busy seconds and no span outlives
// the simulated run.
func TestCollectWithFaultsTraceAndPhaseTotals(t *testing.T) {
	b, err := workload.ByName("MLPf_Res50_TF")
	if err != nil {
		t.Fatal(err)
	}
	plan := &fault.Plan{
		Seed:        3,
		Stragglers:  []fault.Straggler{{Lane: "gpu", Factor: 2}},
		Transients:  []fault.Transient{{Lane: "compute", Prob: 0.4, RetryCost: 0.01}},
		Preemptions: []fault.Preemption{{At: 1, RestartDelay: 2}},
		Checkpoint:  fault.Checkpoint{Interval: 0.5, ReplayFrac: 0.5},
	}
	totals := sim.NewPhaseTotals()
	p, err := CollectWithFaults(b, hw.DSS8440(), 4, plan, totals)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := p.Timeline().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	trace := buf.String()
	if !strings.Contains(trace, `"`+sim.LaneFaults+`"`) {
		t.Error("faults lane missing from the Chrome trace")
	}
	if !strings.Contains(trace, "fault ") {
		t.Error("no fault marker events in the Chrome trace")
	}

	// Phase counters vs the event stream: per-kind sums must equal the
	// sum of event durations, and every span must end by the run's end.
	var end float64
	perKind := map[sim.EventKind]float64{}
	for _, ev := range p.Events {
		if ev.End > end {
			end = ev.End
		}
		if ev.Kind != sim.EvStepDone {
			perKind[ev.Kind] += ev.Duration()
		}
	}
	if end <= 0 {
		t.Fatal("no simulated time elapsed")
	}
	var phaseSum, eventSum float64
	for kind, secs := range totals.Seconds {
		phaseSum += secs
		eventSum += perKind[kind]
		if diff := math.Abs(secs - perKind[kind]); diff > 1e-9*math.Max(1, perKind[kind]) {
			t.Errorf("%s phase total %v != event-stream sum %v", kind, secs, perKind[kind])
		}
	}
	if math.Abs(phaseSum-eventSum) > 1e-9*math.Max(1, eventSum) {
		t.Errorf("phase totals %v != total event seconds %v", phaseSum, eventSum)
	}
	for _, ev := range p.Events {
		if ev.End > end+1e-9 {
			t.Errorf("event %+v extends past run end %v", ev, end)
		}
	}
	if totals.Steps == 0 {
		t.Error("no steps counted under the fault plan")
	}
	if p.Result.Faults == nil || p.Result.Faults.Activations == 0 {
		t.Errorf("fault plan exercised nothing: %+v", p.Result.Faults)
	}
}
