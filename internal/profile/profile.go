// Package profile reimplements the paper's measurement toolchain against
// the simulator: an nvprof analog (per-kernel invocations, durations, FLOP
// counts, memory transactions over a region of interest), a dstat analog
// (time series of host CPU, memory, and I/O), and a dmon analog (per-GPU
// SM utilization, memory, and bus counters). It also assembles the
// 8-dimensional workload-characteristic vectors the paper feeds to PCA
// (§IV-A): PCIe utilization, GPU utilization, CPU utilization, DDR
// footprint, HBM2 footprint, FLOP throughput, memory throughput, and
// number of epochs.
//
// Like the paper's toolchain — where nvprof, dstat and nvidia-smi dmon
// all watch the same real training run — every analog here reads from
// one Profile, collected by subscribing to a single simulation's event
// stream (sim.RunObserved). Collect simulates once; the samplers, the
// characteristics vector and the Chrome-trace export then derive their
// views without re-running the simulator.
package profile

import (
	"fmt"

	"mlperf/internal/fault"
	"mlperf/internal/hw"
	"mlperf/internal/precision"
	"mlperf/internal/sim"
	"mlperf/internal/units"
	"mlperf/internal/workload"
)

// CharacteristicNames lists the eight features in PCA column order.
var CharacteristicNames = []string{
	"pcie_util_mbps",
	"gpu_util_pct",
	"cpu_util_pct",
	"ddr_footprint_mb",
	"hbm_footprint_mb",
	"flop_throughput_gflops",
	"mem_throughput_gbps",
	"epochs",
}

// Characteristics is one benchmark's feature vector.
type Characteristics struct {
	Bench  string
	Values [8]float64
}

// Profile is everything the measurement toolchain derives from ONE
// simulated run: the aggregate Result (itself assembled by the
// simulator's built-in observers) plus the raw event stream. The dstat
// and dmon samplers, the characteristics vector, the nvprof analog and
// the Chrome-trace export all read from here, so their outputs provably
// describe the same run.
type Profile struct {
	Bench  workload.Benchmark
	System *hw.System
	// GPUs is the realized device count (requests are clamped to the
	// system, mirroring the simulator).
	GPUs   int
	Result *sim.Result
	// Events is the full stage-event stream in publication order.
	Events []sim.Event
}

// Collect simulates the benchmark once with the profiler's observers
// subscribed and returns the shared profile every tool reads from.
func Collect(b workload.Benchmark, system *hw.System, gpus int) (*Profile, error) {
	return CollectWithFaults(b, system, gpus, nil)
}

// CollectWithFaults is Collect under a fault plan: the run is simulated
// through the fault layer (stragglers, retries, checkpoints, restarts
// land on the event stream and the timeline's "faults" lane), and any
// extra observers — a sim.TelemetryObserver, an external log — ride the
// same single simulation. A nil plan is the plain Collect path.
func CollectWithFaults(b workload.Benchmark, system *hw.System, gpus int, plan *fault.Plan, obs ...sim.Observer) (*Profile, error) {
	log := &sim.EventLog{}
	cfg := sim.Config{System: system, GPUCount: gpus, Job: b.Job}
	all := append([]sim.Observer{log}, obs...)
	var res *sim.Result
	var err error
	if plan == nil {
		res, err = sim.RunObserved(cfg, all...)
	} else {
		res, err = sim.RunWithFaults(cfg, plan, all...)
	}
	if err != nil {
		return nil, err
	}
	if gpus <= 0 || gpus > system.GPUCount {
		gpus = system.GPUCount
	}
	return &Profile{Bench: b, System: system, GPUs: gpus, Result: res, Events: log.Events}, nil
}

// Timeline returns the run's station timeline (Chrome-trace exportable),
// rebuilt from the same event stream the samplers consume.
func (p *Profile) Timeline() *sim.Timeline { return p.Result.Timeline }

// Kernels returns the nvprof-analog per-kernel records for `steps`
// profiled steps of the run's benchmark on its GPU model.
func (p *Profile) Kernels(steps int) []KernelRecord {
	return Nvprof(p.Bench, &p.System.GPU, steps)
}

// Characteristics extracts the paper's eight features from the run.
func (p *Profile) Characteristics() Characteristics {
	res, b := p.Result, p.Bench
	// Achieved FLOP throughput: training FLOPs per wall second.
	flops := float64(b.Job.Net.TrainFLOPs()) * res.Throughput / 1e9
	// HBM traffic throughput.
	memBW := float64(b.Job.Net.TrainMemTraffic()) * res.Throughput / 1e9
	return Characteristics{
		Bench: b.Abbrev,
		Values: [8]float64{
			res.PCIeRate.Mbps(),
			float64(res.GPUUtilTotal),
			float64(res.CPUUtil),
			res.DRAMBytes.MB(),
			res.HBMBytes.MB(),
			flops,
			memBW,
			b.Job.EpochsToTarget,
		},
	}
}

// Characterize profiles one benchmark on a system/GPU-count and extracts
// the paper's eight characteristics from the simulated run.
func Characterize(b workload.Benchmark, system *hw.System, gpus int) (Characteristics, error) {
	p, err := Collect(b, system, gpus)
	if err != nil {
		return Characteristics{}, err
	}
	return p.Characteristics(), nil
}

// CharacterizeAll profiles every benchmark of the given suites at the
// given GPU count on the system (the paper uses 1 GPU on the C4140 (K) for
// the Figure 1 workload space).
func CharacterizeAll(benches []workload.Benchmark, system *hw.System, gpus int) ([]Characteristics, error) {
	out := make([]Characteristics, 0, len(benches))
	for _, b := range benches {
		c, err := Characterize(b, system, gpus)
		if err != nil {
			return nil, fmt.Errorf("profile: %s: %w", b.Abbrev, err)
		}
		out = append(out, c)
	}
	return out, nil
}

// KernelRecord is one nvprof row: a kernel with its invocation count and
// aggregate cost over the profiled region.
type KernelRecord struct {
	Name        string
	Invocations int
	// TotalTime is the aggregate duration in seconds.
	TotalTime float64
	// FLOPs counts floating-point operations across invocations.
	FLOPs units.FLOPs
	// MemBytes counts DRAM read+write transactions (bytes).
	MemBytes units.Bytes
}

// Nvprof profiles `steps` training steps of a benchmark on one GPU,
// returning per-kernel records like nvprof's ROI mode. Each layer
// contributes its forward and two backward kernels.
func Nvprof(b workload.Benchmark, gpu *hw.GPU, steps int) []KernelRecord {
	if steps < 1 {
		steps = 1
	}
	batch := b.Job.LocalBatchFor(1)
	recs := make([]KernelRecord, 0, len(b.Job.Net.Layers))
	for _, l := range b.Job.Net.Layers {
		t := precision.LayerTime(gpu, l, batch, b.Job.Precision)
		// Physical floor: a kernel's wall time cannot undercut its DRAM
		// transaction volume over the bus, or the profile would place the
		// workload above the roofline envelope.
		if floor := float64(precision.LayerTraffic(l, b.Job.Precision)) /
			(float64(gpu.MemBandwidth) * 0.95); t < floor {
			t = floor
		}
		recs = append(recs, KernelRecord{
			Name:        l.Name,
			Invocations: 3 * steps, // fwd, bwd-data, bwd-weight
			TotalTime:   t * float64(batch) * float64(steps),
			FLOPs:       3 * l.FwdFLOPs * units.FLOPs(batch*steps),
			MemBytes:    precision.LayerTraffic(l, b.Job.Precision) * units.Bytes(batch*steps),
		})
	}
	return recs
}

// RooflinePoint reduces an nvprof profile to the (arithmetic intensity,
// achieved FLOPS) coordinates the paper plots in Figure 2.
func RooflinePoint(recs []KernelRecord) (units.Intensity, units.FLOPSRate) {
	var flops units.FLOPs
	var bytes units.Bytes
	var t float64
	for _, r := range recs {
		flops += r.FLOPs
		bytes += r.MemBytes
		t += r.TotalTime
	}
	if t <= 0 {
		return 0, 0
	}
	return units.IntensityOf(flops, bytes), units.FLOPSRate(float64(flops) / t)
}
