package perfsnap

import (
	"os"
	"testing"

	"mlperf/internal/hw"
	"mlperf/internal/sim"
	"mlperf/internal/sweep"
	"mlperf/internal/workload"
)

// SimSuite is the snapshot suite name for the simulation benchmarks, and
// SimSnapshotFile the committed file that tracks them.
const (
	SimSuite        = "sim"
	SimSnapshotFile = "BENCH_sim.json"
)

// SpeedupKey is the derived ratio the fast path is gated on: step-by-step
// ns/op over analytic ns/op for the 1000-step sweep cell.
const SpeedupKey = "steady_speedup_x"

// simSteps is the window the headline entries collapse; it matches the
// paper-scale runs the sweep engine issues.
const simSteps = 1000

// SimSpecs returns the simulation benchmark suite. The per-cell pairs
// measure the same configuration under both execution strategies:
//
//	sim_cell_fast_1000 / sim_cell_step_1000  - the sweep-cell shape
//	  (NoTimeline, the configuration every grid cell runs)
//	sim_full_fast_1000 / sim_full_step_1000  - timeline materialized
//	sim_fixed_overhead                       - Steps=1 forced collapse;
//	  the floor a run pays before any step is saved
//
// The whole-grid entries measure the Table IV sweep end to end through
// the engine's cache tiers, on one worker for deterministic allocation
// counts:
//
//	grid_table4_cold     - fresh engine per iteration: every cell simulates
//	grid_table4_memwarm  - one warmed engine: every cell hits the memory tier
//	grid_table4_diskwarm - fresh engine + fresh store handle over a filled
//	  cache directory per iteration: every cell replays from disk (the
//	  cross-process -cache-dir story)
//
// Each spec builds its System once and reuses it across iterations, so
// topology caches warm exactly as they do across a long-lived run; the
// cost under measurement is the simulation itself.
func SimSpecs() ([]Spec, error) {
	bench, err := workload.ByName("res50_tf")
	if err != nil {
		return nil, err
	}
	job := bench.Job

	mk := func(steps int, mode sim.FastPathMode, noTimeline bool) func(*testing.B) {
		return func(b *testing.B) {
			cfg := sim.Config{
				System:     hw.DSS8440(),
				GPUCount:   8,
				Job:        job,
				Steps:      steps,
				FastPath:   mode,
				NoTimeline: noTimeline,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(steps), "ns_per_step")
		}
	}

	return []Spec{
		{Name: "sim_cell_fast_1000", Bench: mk(simSteps, sim.FastPathForce, true)},
		{Name: "sim_cell_step_1000", Bench: mk(simSteps, sim.FastPathOff, true)},
		{Name: "sim_full_fast_1000", Bench: mk(simSteps, sim.FastPathForce, false)},
		{Name: "sim_full_step_1000", Bench: mk(simSteps, sim.FastPathOff, false)},
		{Name: "sim_fixed_overhead", Bench: mk(1, sim.FastPathForce, true)},
		{Name: "grid_table4_cold", Bench: gridCold},
		{Name: "grid_table4_memwarm", Bench: gridMemWarm},
		{Name: "grid_table4_diskwarm", Bench: gridDiskWarm},
	}, nil
}

// gridTable4 is the paper's Table IV sweep space: the six MLPerf GPU
// benchmarks scaling 1-8 GPUs on the DSS 8440.
func gridTable4() sweep.Grid {
	return sweep.Grid{
		Benchmarks: []string{"res50_tf", "res50_mx", "ssd_py", "mrcnn_py", "xfmr_py", "ncf_py"},
		Systems:    []string{"dss8440"},
		GPUCounts:  []int{1, 2, 4, 8},
	}
}

// gridCold measures the full Table IV grid with nothing cached: a fresh
// single-worker engine per iteration, so every cell simulates.
func gridCold(b *testing.B) {
	g := gridTable4()
	if _, err := sweep.NewEngine(1).Run(g); err != nil { // warm shared resolvers
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sweep.NewEngine(1).Run(g); err != nil {
			b.Fatal(err)
		}
	}
}

// gridMemWarm measures the grid replayed from the in-memory memo tier.
func gridMemWarm(b *testing.B) {
	g := gridTable4()
	e := sweep.NewEngine(1)
	if _, err := e.Run(g); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(g); err != nil {
			b.Fatal(err)
		}
	}
}

// gridDiskWarm measures the grid replayed from a warm persistent store
// by a fresh engine and a fresh store handle each iteration — the
// second-process -cache-dir scenario. Any simulation fails the
// benchmark: the measurement is only meaningful if every cell came off
// disk.
func gridDiskWarm(b *testing.B) {
	g := gridTable4()
	dir, err := os.MkdirTemp("", "perfsnap-cache-")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fill, err := sweep.OpenDiskStore(dir)
	if err != nil {
		b.Fatal(err)
	}
	seed := sweep.NewEngine(1)
	seed.SetStore(fill)
	if _, err := seed.Run(g); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds, err := sweep.OpenDiskStore(dir)
		if err != nil {
			b.Fatal(err)
		}
		e := sweep.NewEngine(1)
		e.SetStore(ds)
		if _, err := e.Run(g); err != nil {
			b.Fatal(err)
		}
		if st := e.Stats(); st.Simulations != 0 {
			b.Fatalf("disk-warm iteration simulated %d cells", st.Simulations)
		}
	}
}

// CollectSim measures the simulation suite and derives the
// machine-independent speedup ratios.
func CollectSim() (*Snapshot, error) {
	specs, err := SimSpecs()
	if err != nil {
		return nil, err
	}
	snap := Collect(SimSuite, specs)
	snap.Derived = map[string]float64{}
	ratio := func(num, den string) (float64, bool) {
		n, d := snap.Entry(num), snap.Entry(den)
		if n == nil || d == nil || d.NsPerOp <= 0 {
			return 0, false
		}
		return n.NsPerOp / d.NsPerOp, true
	}
	if r, ok := ratio("sim_cell_step_1000", "sim_cell_fast_1000"); ok {
		snap.Derived[SpeedupKey] = r
	}
	if r, ok := ratio("sim_full_step_1000", "sim_full_fast_1000"); ok {
		snap.Derived["timeline_speedup_x"] = r
	}
	if r, ok := ratio("grid_table4_cold", "grid_table4_memwarm"); ok {
		snap.Derived["grid_mem_replay_x"] = r
	}
	if r, ok := ratio("grid_table4_cold", "grid_table4_diskwarm"); ok {
		snap.Derived["grid_disk_replay_x"] = r
	}
	return snap, nil
}
