package perfsnap

import (
	"testing"

	"mlperf/internal/hw"
	"mlperf/internal/sim"
	"mlperf/internal/workload"
)

// SimSuite is the snapshot suite name for the simulation benchmarks, and
// SimSnapshotFile the committed file that tracks them.
const (
	SimSuite        = "sim"
	SimSnapshotFile = "BENCH_sim.json"
)

// SpeedupKey is the derived ratio the fast path is gated on: step-by-step
// ns/op over analytic ns/op for the 1000-step sweep cell.
const SpeedupKey = "steady_speedup_x"

// simSteps is the window the headline entries collapse; it matches the
// paper-scale runs the sweep engine issues.
const simSteps = 1000

// SimSpecs returns the simulation benchmark suite. The pairs measure the
// same configuration under both execution strategies:
//
//	sim_cell_fast_1000 / sim_cell_step_1000  - the sweep-cell shape
//	  (NoTimeline, the configuration every grid cell runs)
//	sim_full_fast_1000 / sim_full_step_1000  - timeline materialized
//	sim_fixed_overhead                       - Steps=1 forced collapse;
//	  the floor a run pays before any step is saved
//
// Each spec builds its System once and reuses it across iterations, so
// topology caches warm exactly as they do across a long-lived run; the
// cost under measurement is the simulation itself.
func SimSpecs() ([]Spec, error) {
	bench, err := workload.ByName("res50_tf")
	if err != nil {
		return nil, err
	}
	job := bench.Job

	mk := func(steps int, mode sim.FastPathMode, noTimeline bool) func(*testing.B) {
		return func(b *testing.B) {
			cfg := sim.Config{
				System:     hw.DSS8440(),
				GPUCount:   8,
				Job:        job,
				Steps:      steps,
				FastPath:   mode,
				NoTimeline: noTimeline,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(steps), "ns_per_step")
		}
	}

	return []Spec{
		{Name: "sim_cell_fast_1000", Bench: mk(simSteps, sim.FastPathForce, true)},
		{Name: "sim_cell_step_1000", Bench: mk(simSteps, sim.FastPathOff, true)},
		{Name: "sim_full_fast_1000", Bench: mk(simSteps, sim.FastPathForce, false)},
		{Name: "sim_full_step_1000", Bench: mk(simSteps, sim.FastPathOff, false)},
		{Name: "sim_fixed_overhead", Bench: mk(1, sim.FastPathForce, true)},
	}, nil
}

// CollectSim measures the simulation suite and derives the
// machine-independent speedup ratios.
func CollectSim() (*Snapshot, error) {
	specs, err := SimSpecs()
	if err != nil {
		return nil, err
	}
	snap := Collect(SimSuite, specs)
	snap.Derived = map[string]float64{}
	ratio := func(num, den string) (float64, bool) {
		n, d := snap.Entry(num), snap.Entry(den)
		if n == nil || d == nil || d.NsPerOp <= 0 {
			return 0, false
		}
		return n.NsPerOp / d.NsPerOp, true
	}
	if r, ok := ratio("sim_cell_step_1000", "sim_cell_fast_1000"); ok {
		snap.Derived[SpeedupKey] = r
	}
	if r, ok := ratio("sim_full_step_1000", "sim_full_fast_1000"); ok {
		snap.Derived["timeline_speedup_x"] = r
	}
	return snap, nil
}
