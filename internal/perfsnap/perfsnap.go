// Package perfsnap records and compares performance snapshots: named Go
// benchmarks run through testing.Benchmark, serialized to a committed
// JSON file (BENCH_*.json) so the repository tracks its own performance
// trajectory. A snapshot carries enough machine identity to make
// comparisons honest — wall-clock metrics are only compared between runs
// on the same CPU model, while allocation counts (deterministic for a
// given build) and derived ratios (machine-independent) gate everywhere,
// including CI.
package perfsnap

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"
)

// Schema is the snapshot file format version.
const Schema = 1

// Spec is one benchmark to collect: a stable entry name and the function
// to measure.
type Spec struct {
	Name  string
	Bench func(b *testing.B)
}

// Machine identifies where a snapshot was taken.
type Machine struct {
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	CPUs   int    `json:"cpus"`
	// CPU is the processor model string ("" when undetectable). Time
	// comparisons are gated on it matching.
	CPU string `json:"cpu"`
}

// Entry is one benchmark's measurement.
type Entry struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// Extra carries custom per-op metrics (e.g. "ns_per_step").
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Snapshot is a full performance record.
type Snapshot struct {
	Schema  int     `json:"schema"`
	Suite   string  `json:"suite"`
	Machine Machine `json:"machine"`
	Entries []Entry `json:"entries"`
	// Derived holds machine-independent figures computed from the
	// entries — ratios like "steady_speedup_x" — which compare (and
	// gate) across machines.
	Derived map[string]float64 `json:"derived,omitempty"`
}

// CurrentMachine describes the host.
func CurrentMachine() Machine {
	return Machine{
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
		CPU:    cpuModel(),
	}
}

// cpuModel extracts the processor model string, Linux-style ("" when the
// platform offers none).
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			if _, v, ok := strings.Cut(name, ":"); ok {
				return strings.TrimSpace(v)
			}
		}
	}
	return ""
}

// Collect runs every spec through testing.Benchmark (allocation
// reporting on) and assembles a snapshot.
func Collect(suite string, specs []Spec) *Snapshot {
	snap := &Snapshot{Schema: Schema, Suite: suite, Machine: CurrentMachine()}
	for _, s := range specs {
		fn := s.Bench
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			fn(b)
		})
		e := Entry{
			Name:        s.Name,
			Iters:       r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if len(r.Extra) > 0 {
			e.Extra = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				e.Extra[k] = v
			}
		}
		snap.Entries = append(snap.Entries, e)
	}
	sort.Slice(snap.Entries, func(i, j int) bool { return snap.Entries[i].Name < snap.Entries[j].Name })
	return snap
}

// Entry returns the named measurement, or nil.
func (s *Snapshot) Entry(name string) *Entry {
	for i := range s.Entries {
		if s.Entries[i].Name == name {
			return &s.Entries[i]
		}
	}
	return nil
}

// Marshal renders the snapshot as stable, human-diffable JSON.
func (s *Snapshot) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteFile writes the snapshot to path.
func (s *Snapshot) WriteFile(path string) error {
	b, err := s.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// ReadFile loads a snapshot, rejecting unknown schema versions.
func ReadFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("perfsnap: %s: %w", path, err)
	}
	if s.Schema != Schema {
		return nil, fmt.Errorf("perfsnap: %s: schema %d, want %d", path, s.Schema, Schema)
	}
	return &s, nil
}

// Options tunes a comparison.
type Options struct {
	// TimeTol is the allowed fractional ns/op growth (e.g. 0.35 = +35%)
	// before a time regression is reported. Time metrics are only
	// compared when both snapshots name the same non-empty CPU model.
	TimeTol float64
	// AllocTol is the allowed fractional allocs/op and bytes/op growth.
	// Allocation counts are deterministic per build, so this can be
	// tight; it applies across machines.
	AllocTol float64
	// MinDerived are floors on the new snapshot's Derived values: e.g.
	// {"steady_speedup_x": 8}. A missing key fails the gate.
	MinDerived map[string]float64
}

// Regression is one comparison failure.
type Regression struct {
	Entry  string  `json:"entry"`
	Metric string  `json:"metric"`
	Old    float64 `json:"old"`
	New    float64 `json:"new"`
	Limit  float64 `json:"limit"`
}

func (r Regression) String() string {
	if r.Entry == "" {
		return fmt.Sprintf("%s: %.3f below floor %.3f", r.Metric, r.New, r.Limit)
	}
	return fmt.Sprintf("%s %s: %.1f -> %.1f (limit %.1f)", r.Entry, r.Metric, r.Old, r.New, r.Limit)
}

// Compare reports every way the new snapshot regressed from the old one
// under the options: time growth past TimeTol (same-CPU runs only),
// allocation growth past AllocTol, entries that disappeared, and Derived
// floors not met. An empty result means the gate passes.
func Compare(old, new *Snapshot, o Options) []Regression {
	var regs []Regression
	sameCPU := old.Machine.CPU != "" && old.Machine.CPU == new.Machine.CPU
	for i := range old.Entries {
		oe := &old.Entries[i]
		ne := new.Entry(oe.Name)
		if ne == nil {
			regs = append(regs, Regression{Entry: oe.Name, Metric: "missing"})
			continue
		}
		if sameCPU && oe.NsPerOp > 0 {
			if limit := oe.NsPerOp * (1 + o.TimeTol); ne.NsPerOp > limit {
				regs = append(regs, Regression{Entry: oe.Name, Metric: "ns_per_op",
					Old: oe.NsPerOp, New: ne.NsPerOp, Limit: limit})
			}
		}
		if limit := float64(oe.AllocsPerOp) * (1 + o.AllocTol); float64(ne.AllocsPerOp) > limit {
			regs = append(regs, Regression{Entry: oe.Name, Metric: "allocs_per_op",
				Old: float64(oe.AllocsPerOp), New: float64(ne.AllocsPerOp), Limit: limit})
		}
		if limit := float64(oe.BytesPerOp) * (1 + o.AllocTol); float64(ne.BytesPerOp) > limit {
			regs = append(regs, Regression{Entry: oe.Name, Metric: "bytes_per_op",
				Old: float64(oe.BytesPerOp), New: float64(ne.BytesPerOp), Limit: limit})
		}
	}
	keys := make([]string, 0, len(o.MinDerived))
	for k := range o.MinDerived {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		floor := o.MinDerived[k]
		v, ok := new.Derived[k]
		if !ok || v < floor {
			regs = append(regs, Regression{Metric: "derived:" + k, New: v, Limit: floor})
		}
	}
	return regs
}
