package perfsnap

import (
	"path/filepath"
	"strings"
	"testing"
)

// fakeSpecs are cheap deterministic benchmarks: one no-op and one that
// allocates a fixed amount per op.
func fakeSpecs() []Spec {
	sink := make([]byte, 0)
	return []Spec{
		{Name: "alloc", Bench: func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sink = make([]byte, 1024)
			}
			_ = sink
			b.ReportMetric(42, "custom")
		}},
		{Name: "noop", Bench: func(b *testing.B) {
			for i := 0; i < b.N; i++ {
			}
		}},
	}
}

func TestCollect(t *testing.T) {
	snap := Collect("fake", fakeSpecs())
	if snap.Schema != Schema || snap.Suite != "fake" {
		t.Fatalf("snapshot header = %d/%q", snap.Schema, snap.Suite)
	}
	if len(snap.Entries) != 2 || snap.Entries[0].Name != "alloc" || snap.Entries[1].Name != "noop" {
		t.Fatalf("entries not collected sorted by name: %+v", snap.Entries)
	}
	a := snap.Entry("alloc")
	if a.AllocsPerOp != 1 || a.BytesPerOp < 1024 {
		t.Fatalf("alloc entry %d allocs / %d bytes per op, want 1 / >=1024", a.AllocsPerOp, a.BytesPerOp)
	}
	if a.Extra["custom"] != 42 {
		t.Fatalf("custom metric %v, want 42", a.Extra["custom"])
	}
	if a.NsPerOp <= 0 || a.Iters <= 0 {
		t.Fatalf("implausible measurement: %+v", a)
	}
	if snap.Entry("missing") != nil {
		t.Fatal("Entry returned a ghost")
	}
	if snap.Machine.GOOS == "" || snap.Machine.CPUs <= 0 {
		t.Fatalf("machine identity incomplete: %+v", snap.Machine)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	snap := &Snapshot{
		Schema:  Schema,
		Suite:   "rt",
		Machine: CurrentMachine(),
		Entries: []Entry{{Name: "x", Iters: 10, NsPerOp: 1.5, AllocsPerOp: 2, BytesPerOp: 3,
			Extra: map[string]float64{"m": 4}}},
		Derived: map[string]float64{SpeedupKey: 12.5},
	}
	path := filepath.Join(t.TempDir(), "BENCH_rt.json")
	if err := snap.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := snap.Marshal()
	b2, _ := got.Marshal()
	if string(b1) != string(b2) {
		t.Fatalf("round trip drifted:\n%s\nvs\n%s", b1, b2)
	}
	if !strings.HasSuffix(string(b1), "\n") {
		t.Fatal("Marshal should end with a newline for clean diffs")
	}

	bad := *snap
	bad.Schema = Schema + 1
	if err := bad.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("ReadFile accepted an unknown schema version")
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("ReadFile on a missing path should fail")
	}
}

// compareBase builds an old/new snapshot pair on the same CPU model.
func compareBase() (*Snapshot, *Snapshot) {
	m := Machine{GOOS: "linux", GOARCH: "amd64", CPUs: 8, CPU: "TestCPU v1"}
	old := &Snapshot{Schema: Schema, Suite: "s", Machine: m, Entries: []Entry{
		{Name: "a", NsPerOp: 100, AllocsPerOp: 10, BytesPerOp: 1000},
	}}
	new := &Snapshot{Schema: Schema, Suite: "s", Machine: m, Entries: []Entry{
		{Name: "a", NsPerOp: 100, AllocsPerOp: 10, BytesPerOp: 1000},
	}, Derived: map[string]float64{SpeedupKey: 16}}
	return old, new
}

func TestCompareClean(t *testing.T) {
	old, new := compareBase()
	opts := Options{TimeTol: 0.35, AllocTol: 0.10, MinDerived: map[string]float64{SpeedupKey: 10}}
	if regs := Compare(old, new, opts); len(regs) != 0 {
		t.Fatalf("clean comparison reported regressions: %v", regs)
	}
}

func TestCompareTimeGatedOnCPU(t *testing.T) {
	opts := Options{TimeTol: 0.35}

	old, new := compareBase()
	new.Entries[0].NsPerOp = 200 // +100%, past the 35% tolerance
	regs := Compare(old, new, opts)
	if len(regs) != 1 || regs[0].Metric != "ns_per_op" || regs[0].Entry != "a" {
		t.Fatalf("same-CPU time regression not caught: %v", regs)
	}
	if s := regs[0].String(); !strings.Contains(s, "ns_per_op") {
		t.Fatalf("regression string %q", s)
	}

	// Different CPU model: the same time growth must be ignored.
	new.Machine.CPU = "TestCPU v2"
	if regs := Compare(old, new, opts); len(regs) != 0 {
		t.Fatalf("cross-machine time comparison should be skipped: %v", regs)
	}

	// Unknown CPU on both sides also disables time comparison.
	old.Machine.CPU, new.Machine.CPU = "", ""
	if regs := Compare(old, new, opts); len(regs) != 0 {
		t.Fatalf("empty CPU model should disable time comparison: %v", regs)
	}
}

func TestCompareAllocsAlwaysGate(t *testing.T) {
	old, new := compareBase()
	new.Machine.CPU = "TestCPU v2" // different machine: allocs still gate
	new.Entries[0].AllocsPerOp = 12
	new.Entries[0].BytesPerOp = 1200
	regs := Compare(old, new, Options{AllocTol: 0.10})
	if len(regs) != 2 {
		t.Fatalf("alloc regressions across machines: %v", regs)
	}
	if regs[0].Metric != "allocs_per_op" || regs[1].Metric != "bytes_per_op" {
		t.Fatalf("unexpected metrics: %v", regs)
	}

	// Within tolerance passes.
	new.Entries[0].AllocsPerOp = 11
	new.Entries[0].BytesPerOp = 1100
	if regs := Compare(old, new, Options{AllocTol: 0.10}); len(regs) != 0 {
		t.Fatalf("within-tolerance growth flagged: %v", regs)
	}
}

func TestCompareMissingEntry(t *testing.T) {
	old, new := compareBase()
	new.Entries = nil
	regs := Compare(old, new, Options{})
	if len(regs) != 1 || regs[0].Metric != "missing" || regs[0].Entry != "a" {
		t.Fatalf("vanished entry not reported: %v", regs)
	}
}

func TestCompareDerivedFloor(t *testing.T) {
	old, new := compareBase()
	opts := Options{MinDerived: map[string]float64{SpeedupKey: 10}}
	if regs := Compare(old, new, opts); len(regs) != 0 {
		t.Fatalf("floor met but flagged: %v", regs)
	}

	new.Derived[SpeedupKey] = 7.5
	regs := Compare(old, new, opts)
	if len(regs) != 1 || regs[0].Metric != "derived:"+SpeedupKey {
		t.Fatalf("below-floor derived not reported: %v", regs)
	}
	if s := regs[0].String(); !strings.Contains(s, "below floor") {
		t.Fatalf("regression string %q", s)
	}

	delete(new.Derived, SpeedupKey)
	if regs := Compare(old, new, opts); len(regs) != 1 {
		t.Fatalf("missing derived key should fail the gate: %v", regs)
	}
}

// The sim suite itself must assemble: specs resolve their workload and
// the configuration at least survives a single collapsed step. Running
// the full 1000-step measurement is the CLI's job, not the test's.
func TestSimSpecsBuild(t *testing.T) {
	specs, err := SimSpecs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 8 {
		t.Fatalf("%d specs, want 8", len(specs))
	}
	names := map[string]bool{}
	for _, s := range specs {
		names[s.Name] = true
		if s.Bench == nil {
			t.Fatalf("%s has no bench func", s.Name)
		}
	}
	for _, want := range []string{"sim_cell_fast_1000", "sim_cell_step_1000",
		"sim_full_fast_1000", "sim_full_step_1000", "sim_fixed_overhead",
		"grid_table4_cold", "grid_table4_memwarm", "grid_table4_diskwarm"} {
		if !names[want] {
			t.Fatalf("suite missing %s", want)
		}
	}
}
