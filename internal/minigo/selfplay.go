package minigo

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"mlperf/internal/train"
)

// Example is one self-play training example: position features and the
// move the search chose.
type Example struct {
	Planes []float64
	Move   int // board index; Pass positions are not collected
}

// SelfPlay plays one MCTS-vs-MCTS game on a fresh board and returns the
// (position, searched move) examples — the data-generation half of the
// minigo loop.
func SelfPlay(size, playouts int, komi float64, seed int64) []Example {
	return SelfPlayWithPrior(size, playouts, komi, seed, nil)
}

// SelfPlayWithPrior is SelfPlay with a policy prior guiding the search —
// the AlphaGo-Zero iteration, where each generation's network shapes the
// next generation's games.
func SelfPlayWithPrior(size, playouts int, komi float64, seed int64, prior Policy) []Example {
	b := NewBoard(size)
	m := NewMCTS(playouts, komi, seed)
	m.Prior = prior
	var out []Example
	maxMoves := 3 * size * size
	for !b.GameOver() && b.Moves() < maxMoves {
		mv, _ := m.BestMove(b)
		if mv != Pass {
			out = append(out, Example{Planes: b.Planes(), Move: mv})
		}
		if err := b.Play(mv); err != nil {
			break
		}
	}
	return out
}

// Agent wraps a trained policy classifier as a player and as an MCTS
// prior.
type Agent struct {
	Size int
	clf  *train.Classifier
}

// NewAgent builds an untrained policy agent for the board size.
func NewAgent(size int, seed int64) (*Agent, error) {
	rng := rand.New(rand.NewSource(seed))
	clf, err := train.NewClassifier(rng, 3*size*size, []int{64}, size*size, 0.02, 0.8)
	if err != nil {
		return nil, err
	}
	return &Agent{Size: size, clf: clf}, nil
}

// TrainOn behavior-clones the searched moves for one epoch, returning the
// mean training loss.
func (a *Agent) TrainOn(examples []Example, rng *rand.Rand) float64 {
	if len(examples) == 0 {
		return 0
	}
	order := rng.Perm(len(examples))
	var loss float64
	for _, i := range order {
		loss += a.clf.Step(examples[i].Planes, examples[i].Move)
	}
	return loss / float64(len(examples))
}

// Prior returns the policy as an MCTS prior function.
func (a *Agent) Prior() Policy {
	return func(b *Board) []float64 {
		return a.probs(b)
	}
}

// probs returns softmax move probabilities masked to the board.
func (a *Agent) probs(b *Board) []float64 {
	logits := make([]float64, a.Size*a.Size)
	d := make([]float64, a.Size*a.Size)
	copy(logits, a.rawLogits(b))
	// Softmax via train.SoftmaxCE's normalization trick: reuse a local
	// implementation to avoid fake labels.
	maxV := logits[0]
	for _, v := range logits {
		if v > maxV {
			maxV = v
		}
	}
	var sum float64
	for i, v := range logits {
		e := math.Exp(clamp(v - maxV))
		d[i] = e
		sum += e
	}
	for i := range d {
		d[i] /= sum
	}
	return d
}

func (a *Agent) rawLogits(b *Board) []float64 {
	return train.ClassifierLogits(a.clf, b.Planes())
}

// Move picks the best legal move according to the policy (greedy), or
// Pass if nothing is legal.
func (a *Agent) Move(b *Board, rng *rand.Rand) int {
	probs := a.probs(b)
	best, bestP := Pass, -1.0
	for _, mv := range b.LegalMoves() {
		if probs[mv] > bestP {
			best, bestP = mv, probs[mv]
		}
	}
	return best
}

func clamp(x float64) float64 {
	if x > 30 {
		return 30
	}
	if x < -30 {
		return -30
	}
	return x
}

// RunResult reports one generation of the minigo loop.
type RunResult struct {
	Games     int
	Examples  int
	WinRate   float64
	Reached   bool
	Elapsed   time.Duration
	MeanLoss  float64
	Benchmark string
}

// TrainToWinRate runs the minigo time-to-quality loop on a small board:
// generate self-play games with MCTS, behavior-clone the searched moves,
// and evaluate the policy (greedy, no search) against a uniform-random
// player until it wins at least `target` of evaluation games.
func TrainToWinRate(size, games, playouts int, target float64, maxGenerations int, seed int64) (*RunResult, error) {
	if size < 3 || games < 1 || playouts < 1 {
		return nil, fmt.Errorf("minigo: bad loop config (size %d, games %d, playouts %d)", size, games, playouts)
	}
	agent, err := NewAgent(size, seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed + 1))
	komi := 0.5
	res := &RunResult{Benchmark: "MLPf_MiniGo_RL (real, reduced scale)"}
	start := time.Now()
	for gen := 0; gen < maxGenerations; gen++ {
		// From the second generation on, the improving policy guides the
		// search (AlphaGo-Zero's loop).
		var prior Policy
		if gen > 0 {
			prior = agent.Prior()
		}
		var examples []Example
		for g := 0; g < games; g++ {
			examples = append(examples, SelfPlayWithPrior(size, playouts, komi, seed+int64(gen*1000+g), prior)...)
		}
		res.Games += games
		res.Examples += len(examples)
		for epoch := 0; epoch < 3; epoch++ {
			res.MeanLoss = agent.TrainOn(examples, rng)
		}
		res.WinRate = EvalVsRandom(agent, size, komi, 30, rng)
		if res.WinRate >= target {
			res.Reached = true
			break
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// EvalVsRandom plays the greedy policy against a uniform-random player,
// alternating colors, and returns the policy's win rate.
func EvalVsRandom(a *Agent, size int, komi float64, games int, rng *rand.Rand) float64 {
	wins := 0.0
	for g := 0; g < games; g++ {
		b := NewBoard(size)
		agentColor := Black
		if g%2 == 1 {
			agentColor = White
		}
		maxMoves := 3 * size * size
		for !b.GameOver() && b.Moves() < maxMoves {
			var mv int
			if b.ToPlay() == agentColor {
				mv = a.Move(b, rng)
			} else {
				legal := b.LegalMoves()
				if len(legal) == 0 || rng.Float64() < 0.05 {
					mv = Pass
				} else {
					mv = legal[rng.Intn(len(legal))]
				}
			}
			if err := b.Play(mv); err != nil {
				break
			}
		}
		switch b.Winner(komi) {
		case agentColor:
			wins++
		case Empty:
			wins += 0.5
		}
	}
	return wins / float64(games)
}
