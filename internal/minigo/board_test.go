package minigo

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustPlay(t *testing.T, b *Board, moves ...int) {
	t.Helper()
	for _, m := range moves {
		if err := b.Play(m); err != nil {
			t.Fatalf("play %d: %v", m, err)
		}
	}
}

func TestCapture(t *testing.T) {
	// 3x3: Black surrounds a white stone at center.
	//  .X.      .X.
	//  XOX  ->  X.X  after Black plays below
	//  ...      .X.
	b := NewBoard(3)
	// B:1(top), W:4(center), B:3(left), W:pass, B:5(right), W:pass, B:7(bottom)
	mustPlay(t, b, 1)
	mustPlay(t, b, 4)
	mustPlay(t, b, 3)
	mustPlay(t, b, Pass)
	mustPlay(t, b, 5)
	mustPlay(t, b, Pass)
	if b.GameOver() {
		t.Fatal("pass/move/pass must not end the game")
	}
	mustPlay(t, b, 7)
	if b.At(4) != Empty {
		t.Errorf("white stone not captured:\n%s", b)
	}
}

func TestSuicideForbidden(t *testing.T) {
	// White playing into a fully Black-surrounded point is suicide.
	b := NewBoard(3)
	mustPlay(t, b, 1)    // B
	mustPlay(t, b, Pass) // W
	mustPlay(t, b, 3)    // B
	mustPlay(t, b, Pass) // W
	mustPlay(t, b, 5)    // B
	mustPlay(t, b, Pass) // W
	mustPlay(t, b, 7)    // B
	// White to play at 4 = suicide.
	if b.Legal(4) {
		t.Errorf("suicide at center allowed:\n%s", b)
	}
	if err := b.Play(4); err == nil {
		t.Error("suicide move accepted")
	}
}

func TestCaptureIsNotSuicide(t *testing.T) {
	// A move that captures first is legal even if it would otherwise have
	// no liberties: classic snapback shape on 3x3.
	//  OX.
	//  XX.     White plays 0?? no: construct  B at 1,3 ; W at 0 is capturable
	b := NewBoard(3)
	mustPlay(t, b, 1) // B at 1
	mustPlay(t, b, 0) // W at corner 0
	mustPlay(t, b, 3) // B at 3: captures W at 0 (its liberties gone)
	if b.At(0) != Empty {
		t.Fatalf("corner stone should be captured:\n%s", b)
	}
}

func TestKoRule(t *testing.T) {
	// Classic ko on 4x4:
	//  .XO.
	//  X.?O   with ? empty: W plays at 5?? Build explicitly:
	// B: 1, 4, 9 ; W: 2, 7, 10. Then W plays 6 capturing B... build:
	b := NewBoard(4)
	mustPlay(t, b, 1)  // B
	mustPlay(t, b, 2)  // W
	mustPlay(t, b, 4)  // B
	mustPlay(t, b, 7)  // W
	mustPlay(t, b, 9)  // B
	mustPlay(t, b, 10) // W
	// Black plays 6: now W stone? 6 neighbors: 2(W),5,7(W),10(W).
	mustPlay(t, b, 5) // B at 5 -> black group 1,4,9,5? neighbors...
	// White captures at 6? Set up simpler: white plays 6, capturing nothing;
	// then the ko shape: black 5 surrounded by 1,4,9 black... use direct ko:
	// Rebuild a canonical ko.
	b = NewBoard(4)
	// Shape:
	//  . B W .
	//  B W . W
	//  . B W .
	//  . . . .
	mustPlay(t, b, 1)    // B
	mustPlay(t, b, 2)    // W
	mustPlay(t, b, 4)    // B
	mustPlay(t, b, 5)    // W
	mustPlay(t, b, 9)    // B
	mustPlay(t, b, 7)    // W
	mustPlay(t, b, Pass) // B
	mustPlay(t, b, 10)   // W
	// Black captures the W at 5 by playing 6.
	mustPlay(t, b, 6)
	if b.At(5) != Empty {
		t.Fatalf("ko capture failed:\n%s", b)
	}
	// White immediately recapturing at 5 would repeat the position: ko.
	if b.Legal(5) {
		t.Errorf("immediate ko recapture allowed:\n%s", b)
	}
}

func TestScoring(t *testing.T) {
	// 3x3 all-black wall on top row: black owns everything it surrounds.
	b := NewBoard(3)
	mustPlay(t, b, 3) // B middle-left
	mustPlay(t, b, Pass)
	mustPlay(t, b, 4) // B center
	mustPlay(t, b, Pass)
	mustPlay(t, b, 5) // B middle-right
	mustPlay(t, b, Pass)
	black, white := b.Score(0.5)
	// Black: 3 stones + 6 territory (both empty regions touch only black).
	if black != 9 {
		t.Errorf("black score = %v, want 9", black)
	}
	if white != 0.5 {
		t.Errorf("white score = %v, want komi only", white)
	}
	if b.Winner(0.5) != Black {
		t.Error("black should win")
	}
}

func TestNeutralTerritory(t *testing.T) {
	b := NewBoard(3)
	mustPlay(t, b, 0) // B corner
	mustPlay(t, b, 8) // W corner
	black, white := b.Score(0)
	// The shared empty region touches both: no territory.
	if black != 1 || white != 1 {
		t.Errorf("scores = %v/%v, want 1/1", black, white)
	}
	if b.Winner(0) != Empty {
		t.Error("equal area should draw at komi 0")
	}
}

func TestGameOverByPasses(t *testing.T) {
	b := NewBoard(3)
	mustPlay(t, b, Pass)
	if b.GameOver() {
		t.Fatal("one pass ended game")
	}
	mustPlay(t, b, Pass)
	if !b.GameOver() {
		t.Fatal("two passes should end the game")
	}
	if err := b.Play(0); err == nil {
		t.Error("move after game over accepted")
	}
	if b.Legal(0) {
		t.Error("Legal() after game over")
	}
}

func TestPlanesEncoding(t *testing.T) {
	b := NewBoard(3)
	mustPlay(t, b, 4) // Black center; White to play.
	p := b.Planes()
	if len(p) != 27 {
		t.Fatalf("planes length %d", len(p))
	}
	// From White's perspective: own plane empty, opponent plane has 4.
	if p[4] != 0 || p[9+4] != 1 {
		t.Errorf("plane encoding wrong: own[4]=%v opp[4]=%v", p[4], p[9+4])
	}
	// To-play plane is 0 for White.
	if p[18] != 0 {
		t.Errorf("to-play plane = %v for white", p[18])
	}
}

// Property: random legal play never corrupts the board — stone counts
// change by at most the move plus captures, Legal/Play agree, and cloning
// is independent.
func TestRandomGamesInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBoard(4)
		for step := 0; step < 40 && !b.GameOver(); step++ {
			legal := b.LegalMoves()
			var mv int
			if len(legal) == 0 || rng.Float64() < 0.1 {
				mv = Pass
			} else {
				mv = legal[rng.Intn(len(legal))]
			}
			clone := b.Clone()
			if err := b.Play(mv); err != nil {
				return false
			}
			// The clone must be unaffected.
			if mv != Pass && clone.At(mv) != Empty {
				return false
			}
			// No chain on the board may be liberty-less.
			for i := 0; i < 16; i++ {
				if b.At(i) != Empty {
					if _, lib := b.group(i); !lib {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestBoardSizeBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("size-1 board accepted")
		}
	}()
	NewBoard(1)
}
