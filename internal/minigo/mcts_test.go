package minigo

import (
	"math/rand"
	"testing"
)

func TestMCTSReturnsLegalMove(t *testing.T) {
	b := NewBoard(4)
	m := NewMCTS(100, 0.5, 1)
	mv, dist := m.BestMove(b)
	if mv != Pass && !b.Legal(mv) {
		t.Fatalf("MCTS returned illegal move %d", mv)
	}
	if len(dist) == 0 {
		t.Fatal("no visit distribution")
	}
	var total float64
	for _, p := range dist {
		if p < 0 {
			t.Error("negative visit share")
		}
		total += p
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("visit distribution sums to %v", total)
	}
}

func TestMCTSGameOver(t *testing.T) {
	b := NewBoard(3)
	_ = b.Play(Pass)
	_ = b.Play(Pass)
	m := NewMCTS(50, 0.5, 2)
	if mv, _ := m.BestMove(b); mv != Pass {
		t.Errorf("move %d on a finished game", mv)
	}
}

// TestMCTSFindsWinningCapture: a position where Black wins only by
// capturing the white intruder in atari — any other move leaves White
// ahead on territory. The searcher must find the capture.
func TestMCTSFindsWinningCapture(t *testing.T) {
	// 4x4: Black wall on column 1 plus the corner, White wall on column 2
	// plus an intruder at 4 whose only liberty is 8. At komi -0.5 Black
	// wins iff the intruder dies (area 8 vs 7.5); otherwise column 0 is
	// neutral and White is comfortably ahead.
	b := NewBoard(4)
	mustPlay(t, b, 1)  // B
	mustPlay(t, b, 2)  // W
	mustPlay(t, b, 5)  // B
	mustPlay(t, b, 6)  // W
	mustPlay(t, b, 9)  // B
	mustPlay(t, b, 10) // W
	mustPlay(t, b, 13) // B
	mustPlay(t, b, 14) // W
	mustPlay(t, b, 0)  // B corner
	mustPlay(t, b, 4)  // W intruder, one liberty (8)
	m := NewMCTS(2000, -0.5, 3)
	mv, _ := m.BestMove(b)
	if mv != 8 {
		t.Errorf("MCTS chose %d, want the capture at 8\n%s", mv, b)
	}
}

// TestMCTSBeatsRandom: a modest-playout searcher must beat a uniform
// random player convincingly on 4x4.
func TestMCTSBeatsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	wins := 0.0
	const games = 10
	for g := 0; g < games; g++ {
		b := NewBoard(4)
		m := NewMCTS(60, 0.5, int64(g))
		mctsColor := Black
		if g%2 == 1 {
			mctsColor = White
		}
		for !b.GameOver() && b.Moves() < 48 {
			var mv int
			if b.ToPlay() == mctsColor {
				mv, _ = m.BestMove(b)
			} else {
				legal := b.LegalMoves()
				if len(legal) == 0 || rng.Float64() < 0.05 {
					mv = Pass
				} else {
					mv = legal[rng.Intn(len(legal))]
				}
			}
			if err := b.Play(mv); err != nil {
				t.Fatal(err)
			}
		}
		switch b.Winner(0.5) {
		case mctsColor:
			wins++
		case Empty:
			wins += 0.5
		}
	}
	if rate := wins / games; rate < 0.7 {
		t.Errorf("MCTS win rate vs random = %.2f, want >= 0.7", rate)
	}
}

func TestSelfPlayProducesExamples(t *testing.T) {
	ex := SelfPlay(4, 30, 0.5, 5)
	if len(ex) == 0 {
		t.Fatal("no examples")
	}
	for _, e := range ex {
		if len(e.Planes) != 3*16 {
			t.Fatalf("planes length %d", len(e.Planes))
		}
		if e.Move < 0 || e.Move >= 16 {
			t.Fatalf("move %d out of range", e.Move)
		}
	}
}

// TestMiniGoTimeToQuality is the RL benchmark executing for real: the
// behavior-cloned policy must learn to beat a random player.
func TestMiniGoTimeToQuality(t *testing.T) {
	if testing.Short() {
		t.Skip("self-play loop in -short mode")
	}
	res, err := TrainToWinRate(4, 4, 40, 0.7, 6, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.Examples == 0 {
		t.Fatal("no training data generated")
	}
	if !res.Reached {
		t.Errorf("win-rate target not reached: %.2f after %d games", res.WinRate, res.Games)
	}
}

func TestTrainToWinRateBadConfig(t *testing.T) {
	if _, err := TrainToWinRate(1, 1, 1, 0.5, 1, 1); err == nil {
		t.Error("bad config accepted")
	}
}

func TestAgentPriorShapesSearch(t *testing.T) {
	a, err := NewAgent(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBoard(4)
	pr := a.Prior()(b)
	if len(pr) != 16 {
		t.Fatalf("prior length %d", len(pr))
	}
	var sum float64
	for _, p := range pr {
		if p < 0 {
			t.Error("negative prior")
		}
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("prior sums to %v", sum)
	}
	// An MCTS with the prior wired in must still return legal moves.
	m := NewMCTS(50, 0.5, 4)
	m.Prior = a.Prior()
	if mv, _ := m.BestMove(b); mv != Pass && !b.Legal(mv) {
		t.Error("prior-guided MCTS returned illegal move")
	}
}
