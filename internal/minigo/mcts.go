package minigo

import (
	"math"
	"math/rand"
)

// Policy scores candidate moves for a position: it returns a prior weight
// per board point (len Size*Size); nil priors mean uniform. The self-play
// loop plugs the trained network in here.
type Policy func(b *Board) []float64

// MCTS is a Monte-Carlo tree searcher with UCT selection, optional policy
// priors (PUCT-style), and random-playout evaluation — the search at the
// heart of the minigo benchmark.
type MCTS struct {
	// Playouts per move decision.
	Playouts int
	// Komi for terminal scoring.
	Komi float64
	// Prior, if set, biases selection toward policy-preferred moves.
	Prior Policy
	// MaxRolloutMoves caps playout length (guards against pathological
	// superko dances).
	MaxRolloutMoves int

	rng *rand.Rand
}

// NewMCTS builds a searcher with the given playout budget.
func NewMCTS(playouts int, komi float64, seed int64) *MCTS {
	return &MCTS{
		Playouts:        playouts,
		Komi:            komi,
		MaxRolloutMoves: 0, // set per board in BestMove
		rng:             rand.New(rand.NewSource(seed)),
	}
}

type node struct {
	move     int // move that led here (Pass allowed)
	parent   *node
	children []*node
	untried  []int
	visits   int
	wins     float64 // from the perspective of the player who just moved
	prior    float64
}

// BestMove searches from the position and returns the chosen move (may be
// Pass) plus the visit distribution over moves (for training targets).
func (m *MCTS) BestMove(b *Board) (int, map[int]float64) {
	if b.GameOver() {
		return Pass, nil
	}
	maxMoves := m.MaxRolloutMoves
	if maxMoves <= 0 {
		maxMoves = 4 * b.Size * b.Size
	}
	root := &node{move: Pass, untried: append(b.LegalMoves(), Pass)}

	var priors []float64
	if m.Prior != nil {
		priors = m.Prior(b)
	}

	for p := 0; p < m.Playouts; p++ {
		bb := b.Clone()
		n := root
		// Selection.
		for len(n.untried) == 0 && len(n.children) > 0 && !bb.GameOver() {
			n = m.selectChild(n)
			_ = bb.Play(n.move)
		}
		// Expansion.
		if len(n.untried) > 0 && !bb.GameOver() {
			idx := m.rng.Intn(len(n.untried))
			mv := n.untried[idx]
			n.untried[idx] = n.untried[len(n.untried)-1]
			n.untried = n.untried[:len(n.untried)-1]
			if mv != Pass && !bb.Legal(mv) {
				// Legality may have changed along the tree path.
				continue
			}
			_ = bb.Play(mv)
			child := &node{move: mv, parent: n}
			if !bb.GameOver() {
				child.untried = append(bb.LegalMoves(), Pass)
			}
			if priors != nil && n == root && mv != Pass {
				child.prior = priors[mv]
			}
			n.children = append(n.children, child)
			n = child
		}
		// Rollout.
		winner := m.rollout(bb, maxMoves)
		// Backpropagation: wins are credited to the player who made the
		// node's move (i.e. the opponent of bb.toPlay at that node).
		for ; n != nil; n = n.parent {
			n.visits++
			// The player who moved into node n:
			mover := moverOf(b, n)
			if winner == mover {
				n.wins++
			} else if winner == Empty {
				n.wins += 0.5
			}
		}
	}

	if len(root.children) == 0 {
		return Pass, nil
	}
	best := root.children[0]
	dist := make(map[int]float64, len(root.children))
	total := 0.0
	for _, c := range root.children {
		dist[c.move] = float64(c.visits)
		total += float64(c.visits)
		if c.visits > best.visits {
			best = c
		}
	}
	for mv := range dist {
		dist[mv] /= total
	}
	return best.move, dist
}

// moverOf determines which color made node n's move, by walking the depth
// from the root: the root position has b.ToPlay() to move.
func moverOf(rootBoard *Board, n *node) Color {
	depth := 0
	for p := n; p.parent != nil; p = p.parent {
		depth++
	}
	// depth 1 = root player's move.
	if depth%2 == 1 {
		return rootBoard.ToPlay()
	}
	return rootBoard.ToPlay().Opponent()
}

// selectChild picks the UCT/PUCT-maximizing child.
func (m *MCTS) selectChild(n *node) *node {
	const c = 1.4
	const cPrior = 2.0
	var best *node
	bestScore := math.Inf(-1)
	for _, ch := range n.children {
		exploit := ch.wins / float64(ch.visits)
		explore := c * math.Sqrt(math.Log(float64(n.visits))/float64(ch.visits))
		score := exploit + explore + cPrior*ch.prior/float64(1+ch.visits)
		if score > bestScore {
			best, bestScore = ch, score
		}
	}
	return best
}

// rollout plays uniformly random legal moves until the game ends (or the
// cap), then scores.
func (m *MCTS) rollout(b *Board, maxMoves int) Color {
	for steps := 0; !b.GameOver() && steps < maxMoves; steps++ {
		moves := b.LegalMoves()
		// Pass with small probability or when nothing else is legal,
		// so games terminate.
		if len(moves) == 0 || m.rng.Float64() < 0.05 {
			_ = b.Play(Pass)
			continue
		}
		_ = b.Play(moves[m.rng.Intn(len(moves))])
	}
	return b.Winner(m.Komi)
}
