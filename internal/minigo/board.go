// Package minigo is a real, minimal Go engine — board rules, Monte-Carlo
// tree search, and a self-play training loop — standing in for MLPerf
// v0.5's reinforcement-learning benchmark (a minigo fork), which the paper
// excludes for lack of a GPU submission. Here the whole loop executes for
// real at small board sizes: MCTS self-play generates positions, a policy
// network (package train) learns to predict the searched moves, and
// quality is measured as win rate against a reference player — the
// time-to-quality protocol of the RL benchmark in miniature.
package minigo

import (
	"fmt"
	"strings"
)

// Color is a stone color.
type Color int8

// Colors.
const (
	Empty Color = iota
	Black
	White
)

// Opponent returns the other player.
func (c Color) Opponent() Color {
	switch c {
	case Black:
		return White
	case White:
		return Black
	default:
		return Empty
	}
}

// String names the color.
func (c Color) String() string {
	switch c {
	case Black:
		return "black"
	case White:
		return "white"
	default:
		return "empty"
	}
}

// Pass is the move index meaning "pass".
const Pass = -1

// Board is a square Go board with positional-superko tracking.
type Board struct {
	Size   int
	cells  []Color
	toPlay Color
	// history holds the position keys seen so far (positional superko).
	history map[string]bool
	// passes counts consecutive passes; two ends the game.
	passes int
	// moves counts total moves played.
	moves int
}

// NewBoard creates an empty board with Black to play.
func NewBoard(size int) *Board {
	if size < 2 || size > 19 {
		panic(fmt.Sprintf("minigo: board size %d", size))
	}
	b := &Board{
		Size:    size,
		cells:   make([]Color, size*size),
		toPlay:  Black,
		history: make(map[string]bool),
	}
	b.history[b.key()] = true
	return b
}

// Clone deep-copies the board.
func (b *Board) Clone() *Board {
	c := &Board{
		Size:    b.Size,
		cells:   append([]Color(nil), b.cells...),
		toPlay:  b.toPlay,
		history: make(map[string]bool, len(b.history)),
		passes:  b.passes,
		moves:   b.moves,
	}
	for k := range b.history {
		c.history[k] = true
	}
	return c
}

// ToPlay returns whose turn it is.
func (b *Board) ToPlay() Color { return b.toPlay }

// At returns the stone at index i (row*Size+col).
func (b *Board) At(i int) Color { return b.cells[i] }

// Moves returns the number of moves played.
func (b *Board) Moves() int { return b.moves }

// GameOver reports whether two consecutive passes ended the game.
func (b *Board) GameOver() bool { return b.passes >= 2 }

// key serializes the position plus the player to move.
func (b *Board) key() string {
	var sb strings.Builder
	sb.Grow(len(b.cells) + 1)
	for _, c := range b.cells {
		sb.WriteByte(byte('0' + c))
	}
	sb.WriteByte(byte('0' + b.toPlay))
	return sb.String()
}

// neighbors appends the orthogonal neighbors of i to buf.
func (b *Board) neighbors(i int, buf []int) []int {
	r, c := i/b.Size, i%b.Size
	if r > 0 {
		buf = append(buf, i-b.Size)
	}
	if r < b.Size-1 {
		buf = append(buf, i+b.Size)
	}
	if c > 0 {
		buf = append(buf, i-1)
	}
	if c < b.Size-1 {
		buf = append(buf, i+1)
	}
	return buf
}

// group flood-fills the chain containing i, returning its stones and
// whether it has at least one liberty.
func (b *Board) group(i int) (stones []int, hasLiberty bool) {
	color := b.cells[i]
	seen := make([]bool, len(b.cells))
	stack := []int{i}
	seen[i] = true
	var nbuf [4]int
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		stones = append(stones, cur)
		for _, n := range b.neighbors(cur, nbuf[:0]) {
			switch b.cells[n] {
			case Empty:
				hasLiberty = true
			case color:
				if !seen[n] {
					seen[n] = true
					stack = append(stack, n)
				}
			}
		}
	}
	return stones, hasLiberty
}

// tryPlay applies the move on a scratch board, returning the resulting
// cells and capture count, or an error for illegal moves (occupied,
// suicide). Superko is checked by the caller.
func (b *Board) tryPlay(i int, who Color) ([]Color, int, error) {
	if b.cells[i] != Empty {
		return nil, 0, fmt.Errorf("minigo: point %d occupied", i)
	}
	scratch := &Board{Size: b.Size, cells: append([]Color(nil), b.cells...)}
	scratch.cells[i] = who
	// Remove opponent chains left without liberties.
	captured := 0
	var nbuf [4]int
	for _, n := range scratch.neighbors(i, nbuf[:0]) {
		if scratch.cells[n] == who.Opponent() {
			stones, lib := scratch.group(n)
			if !lib {
				for _, s := range stones {
					scratch.cells[s] = Empty
				}
				captured += len(stones)
			}
		}
	}
	// Suicide check.
	if _, lib := scratch.group(i); !lib {
		return nil, 0, fmt.Errorf("minigo: suicide at %d", i)
	}
	return scratch.cells, captured, nil
}

// Legal reports whether the move (or Pass) is legal for the current
// player, including the positional-superko rule.
func (b *Board) Legal(i int) bool {
	if b.GameOver() {
		return false
	}
	if i == Pass {
		return true
	}
	if i < 0 || i >= len(b.cells) {
		return false
	}
	cells, _, err := b.tryPlay(i, b.toPlay)
	if err != nil {
		return false
	}
	next := &Board{Size: b.Size, cells: cells, toPlay: b.toPlay.Opponent()}
	return !b.history[next.key()]
}

// Play applies a legal move (or Pass) and flips the turn.
func (b *Board) Play(i int) error {
	if b.GameOver() {
		return fmt.Errorf("minigo: game over")
	}
	if i == Pass {
		b.passes++
		b.moves++
		b.toPlay = b.toPlay.Opponent()
		b.history[b.key()] = true
		return nil
	}
	if !b.Legal(i) {
		return fmt.Errorf("minigo: illegal move %d for %v", i, b.toPlay)
	}
	cells, _, err := b.tryPlay(i, b.toPlay)
	if err != nil {
		return err
	}
	b.cells = cells
	b.passes = 0
	b.moves++
	b.toPlay = b.toPlay.Opponent()
	b.history[b.key()] = true
	return nil
}

// LegalMoves returns all legal stone placements (Pass is always legal and
// not included).
func (b *Board) LegalMoves() []int {
	var out []int
	for i := range b.cells {
		if b.Legal(i) {
			out = append(out, i)
		}
	}
	return out
}

// Score computes area scores (stones + territory surrounded by exactly
// one color). Komi is added to White.
func (b *Board) Score(komi float64) (black, white float64) {
	seen := make([]bool, len(b.cells))
	var nbuf [4]int
	for i, c := range b.cells {
		switch c {
		case Black:
			black++
		case White:
			white++
		case Empty:
			if seen[i] {
				continue
			}
			// Flood-fill the empty region, noting bordering colors.
			region := []int{i}
			seen[i] = true
			stack := []int{i}
			touchBlack, touchWhite := false, false
			for len(stack) > 0 {
				cur := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, n := range b.neighbors(cur, nbuf[:0]) {
					switch b.cells[n] {
					case Black:
						touchBlack = true
					case White:
						touchWhite = true
					case Empty:
						if !seen[n] {
							seen[n] = true
							region = append(region, n)
							stack = append(stack, n)
						}
					}
				}
			}
			if touchBlack && !touchWhite {
				black += float64(len(region))
			} else if touchWhite && !touchBlack {
				white += float64(len(region))
			}
		}
	}
	return black, white + komi
}

// Winner returns the winner under the komi, or Empty for a draw.
func (b *Board) Winner(komi float64) Color {
	black, white := b.Score(komi)
	switch {
	case black > white:
		return Black
	case white > black:
		return White
	default:
		return Empty
	}
}

// String renders the board.
func (b *Board) String() string {
	var sb strings.Builder
	for r := 0; r < b.Size; r++ {
		for c := 0; c < b.Size; c++ {
			switch b.cells[r*b.Size+c] {
			case Black:
				sb.WriteByte('X')
			case White:
				sb.WriteByte('O')
			default:
				sb.WriteByte('.')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Planes encodes the position as the policy network's input features:
// own stones, opponent stones, and a to-play plane, flattened.
func (b *Board) Planes() []float64 {
	n := len(b.cells)
	out := make([]float64, 3*n)
	me := b.toPlay
	for i, c := range b.cells {
		switch c {
		case me:
			out[i] = 1
		case me.Opponent():
			out[n+i] = 1
		}
	}
	fill := 0.0
	if me == Black {
		fill = 1
	}
	for i := 2 * n; i < 3*n; i++ {
		out[i] = fill
	}
	return out
}
