package fault

import (
	"math"
	"reflect"
	"testing"

	"mlperf/internal/units"
)

// pipe is the target layout tests compile against: the simulator's
// three lanes with their stage kinds.
func pipe() []Target {
	return []Target{
		{Lane: "cpu-input", Kind: "input"},
		{Lane: "pcie-h2d", Kind: "h2d"},
		{Lane: "gpu", Kind: "compute"},
		{Lane: "gpu", Kind: "allreduce"},
		{Lane: "gpu", Kind: "optimizer"},
	}
}

func TestValidate(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name string
		plan Plan
		ok   bool
	}{
		{"empty", Plan{}, true},
		{"straggler", Plan{Stragglers: []Straggler{{Lane: "gpu", Factor: 2}}}, true},
		{"straggler factor<1", Plan{Stragglers: []Straggler{{Lane: "gpu", Factor: 0.5}}}, false},
		{"straggler NaN", Plan{Stragglers: []Straggler{{Lane: "gpu", Factor: nan}}}, false},
		{"straggler no lane", Plan{Stragglers: []Straggler{{Factor: 2}}}, false},
		{"straggler empty range", Plan{Stragglers: []Straggler{{Lane: "gpu", Factor: 2, FromStep: 5, ToStep: 5}}}, false},
		{"straggler negative step", Plan{Stragglers: []Straggler{{Lane: "gpu", Factor: 2, FromStep: -1}}}, false},
		{"link", Plan{Links: []LinkFault{{Lane: "pcie-h2d", BandwidthFrac: 0.5}}}, true},
		{"link frac 0", Plan{Links: []LinkFault{{Lane: "pcie-h2d", BandwidthFrac: 0}}}, false},
		{"link frac >1", Plan{Links: []LinkFault{{Lane: "pcie-h2d", BandwidthFrac: 1.5}}}, false},
		{"link flap up>period", Plan{Links: []LinkFault{{Lane: "pcie-h2d", BandwidthFrac: 0.5, Period: 4, Up: 5}}}, false},
		{"transient", Plan{Transients: []Transient{{Lane: "compute", Prob: 0.1, RetryCost: 0.01}}}, true},
		{"transient prob 1", Plan{Transients: []Transient{{Lane: "compute", Prob: 1}}}, false},
		{"transient negative cost", Plan{Transients: []Transient{{Lane: "compute", Prob: 0.1, RetryCost: -1}}}, false},
		{"preemption", Plan{Preemptions: []Preemption{{At: 10, RestartDelay: 30}}}, true},
		{"preemption negative", Plan{Preemptions: []Preemption{{At: -1}}}, false},
		{"preemption inf delay", Plan{Preemptions: []Preemption{{At: 1, RestartDelay: math.Inf(1)}}}, false},
		{"checkpoint", Plan{Checkpoint: Checkpoint{Interval: 60, ReplayFrac: 1}}, true},
		{"checkpoint replay >1", Plan{Checkpoint: Checkpoint{Interval: 60, ReplayFrac: 1.5}}, false},
		{"checkpoint NaN interval", Plan{Checkpoint: Checkpoint{Interval: nan}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.plan.Validate()
			if tc.ok && err != nil {
				t.Errorf("Validate() = %v, want nil", err)
			}
			if !tc.ok && err == nil {
				t.Error("Validate() = nil, want error")
			}
		})
	}
}

func TestEmptyAndCanon(t *testing.T) {
	var nilPlan *Plan
	if !nilPlan.Empty() {
		t.Error("nil plan must be empty")
	}
	if !(&Plan{Seed: 42}).Empty() {
		t.Error("a plan with only a seed injects nothing and must be empty")
	}
	c, err := (&Plan{}).Canon()
	if err != nil || c != "" {
		t.Errorf("empty plan Canon() = %q, %v; want \"\", nil", c, err)
	}

	p := &Plan{Seed: 7, Stragglers: []Straggler{{Lane: "gpu", Factor: 2}}}
	c1, err := p.Canon()
	if err != nil {
		t.Fatal(err)
	}
	// Canon → Parse → Canon must be a fixed point.
	p2, err := Parse(c1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := p2.Canon()
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Errorf("canonical form not stable:\n%s\n%s", c1, c2)
	}
	if !reflect.DeepEqual(p, p2) {
		t.Errorf("round trip changed the plan: %+v vs %+v", p, p2)
	}

	if _, err := (&Plan{Stragglers: []Straggler{{Lane: "gpu", Factor: 0.1}}}).Canon(); err == nil {
		t.Error("Canon must reject invalid plans")
	}
	if _, err := Parse(`{"Stragglers":[{"Lane":"gpu","Factor":0.1}]}`); err == nil {
		t.Error("Parse must reject invalid plans")
	}
	if _, err := Parse("{not json"); err == nil {
		t.Error("Parse must reject malformed JSON")
	}
}

func TestCompileStraggler(t *testing.T) {
	p := &Plan{Stragglers: []Straggler{{Lane: "gpu", Factor: 2, FromStep: 4, ToStep: 8}}}
	s, err := p.Compile(pipe(), 16)
	if err != nil {
		t.Fatal(err)
	}
	// Targets 2,3,4 share the gpu lane; only steps [4,8) are scaled.
	for tgt := 0; tgt < 5; tgt++ {
		for step := 0; step < 16; step++ {
			want := 1.0
			if tgt >= 2 && step >= 4 && step < 8 {
				want = 2.0
			}
			if got := s.Mult(tgt, step); got != want {
				t.Fatalf("Mult(%d, %d) = %v, want %v", tgt, step, got, want)
			}
		}
	}
	// One activation edge per affected target, at the onset step.
	for tgt := 2; tgt <= 4; tgt++ {
		if acts := s.ActivationsAt(tgt, 4); len(acts) != 1 {
			t.Errorf("target %d activations at step 4 = %d, want 1", tgt, len(acts))
		}
		if acts := s.ActivationsAt(tgt, 5); len(acts) != 0 {
			t.Errorf("target %d re-announced at step 5", tgt)
		}
	}
	// Out-of-range queries are identity.
	if s.Mult(99, 0) != 1 || s.Mult(0, 99) != 1 || s.Mult(-1, -1) != 1 {
		t.Error("out-of-range Mult must be 1")
	}
}

func TestCompileKindMatch(t *testing.T) {
	// Targeting the stage kind "allreduce" must hit only that stage, not
	// its lane mates.
	p := &Plan{Links: []LinkFault{{Lane: "allreduce", BandwidthFrac: 0.5}}}
	s, err := p.Compile(pipe(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Mult(3, 0); got != 2 {
		t.Errorf("allreduce mult = %v, want 2 (1/0.5)", got)
	}
	if got := s.Mult(2, 0); got != 1 {
		t.Errorf("compute mult = %v, want 1 (kind-targeted fault leaked)", got)
	}
}

func TestCompileFlapping(t *testing.T) {
	p := &Plan{Links: []LinkFault{{Lane: "pcie-h2d", BandwidthFrac: 0.5, Period: 4, Up: 2}}}
	s, err := p.Compile(pipe(), 8)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 8; step++ {
		want := 1.0
		if step%4 < 2 {
			want = 2.0
		}
		if got := s.Mult(1, step); got != want {
			t.Errorf("step %d mult = %v, want %v", step, got, want)
		}
	}
	// Each up-flap is one activation edge: steps 0 and 4.
	if len(s.ActivationsAt(1, 0)) != 1 || len(s.ActivationsAt(1, 4)) != 1 {
		t.Error("flap onsets missing")
	}
	if len(s.ActivationsAt(1, 1)) != 0 {
		t.Error("continuing flap must not re-announce")
	}
}

func TestCompileTransientDeterminism(t *testing.T) {
	p := &Plan{Seed: 99, Transients: []Transient{{Lane: "compute", Prob: 0.5, RetryCost: 0.01}}}
	a, err := p.Compile(pipe(), 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Compile(pipe(), 64)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for step := 0; step < 64; step++ {
		na, ca := a.Retries(2, step)
		nb, cb := b.Retries(2, step)
		if na != nb || ca != cb {
			t.Fatalf("step %d: draws differ across compiles: %d/%v vs %d/%v", step, na, ca, nb, cb)
		}
		if na > defaultMaxRetries {
			t.Fatalf("step %d: %d retries above default cap", step, na)
		}
		total += na
	}
	if total == 0 {
		t.Error("prob 0.5 over 64 steps drew no retries — the stream is dead")
	}

	// A different seed must draw a different failure pattern.
	p2 := &Plan{Seed: 100, Transients: p.Transients}
	c, err := p2.Compile(pipe(), 64)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for step := 0; step < 64; step++ {
		na, _ := a.Retries(2, step)
		nc, _ := c.Retries(2, step)
		if na != nc {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 99 and 100 drew identical failure patterns")
	}
}

func TestCheckpointCost(t *testing.T) {
	p := &Plan{Checkpoint: Checkpoint{Interval: 60, SnapshotBytes: 4 * units.GB, WriteBW: units.BytesPerSecond(2 * units.GB)}}
	if got := p.CheckpointCost(0); got != 2 {
		t.Errorf("CheckpointCost = %v, want 2s (4GB @ 2GB/s)", got)
	}
	// Snapshot size defaults to the model footprint.
	p2 := &Plan{Checkpoint: Checkpoint{Interval: 60}}
	if got := p2.CheckpointCost(2 * units.GB); got != 1 {
		t.Errorf("derived CheckpointCost = %v, want 1s (2GB @ default 2GB/s)", got)
	}
	// No checkpointing → no cost.
	if got := (&Plan{}).CheckpointCost(units.GB); got != 0 {
		t.Errorf("no-checkpoint cost = %v, want 0", got)
	}
}

func TestRestartCost(t *testing.T) {
	p := &Plan{Checkpoint: Checkpoint{Interval: 60, ReplayFrac: 1}}
	// Preempted at t=130 with 60s checkpoints: 10s since the last
	// snapshot is replayed, plus the restart delay.
	if got := p.RestartCost(Preemption{At: 130, RestartDelay: 30}); got != 40 {
		t.Errorf("RestartCost = %v, want 40", got)
	}
	// Without checkpointing the whole run to that point is lost.
	p2 := &Plan{Checkpoint: Checkpoint{ReplayFrac: 1}}
	if got := p2.RestartCost(Preemption{At: 130, RestartDelay: 30}); got != 160 {
		t.Errorf("no-checkpoint RestartCost = %v, want 160", got)
	}
}
