package fault

import (
	"math"
	"testing"
)

// FuzzParse drives arbitrary bytes through the plan decoder and, when a
// plan comes out, through Compile: decoding must never panic, and every
// plan that passes validation must compile to finite, non-negative
// schedule entries.
func FuzzParse(f *testing.F) {
	f.Add("")
	f.Add("{}")
	f.Add(`{"Seed":3,"Stragglers":[{"Lane":"gpu","Factor":2}]}`)
	f.Add(`{"Links":[{"Lane":"pcie-h2d","BandwidthFrac":0.25,"Period":8,"Up":3}]}`)
	f.Add(`{"Transients":[{"Lane":"compute","Prob":0.3,"RetryCost":0.01,"MaxRetries":5}]}`)
	f.Add(`{"Preemptions":[{"At":12.5,"RestartDelay":30}],"Checkpoint":{"Interval":60,"ReplayFrac":1}}`)
	f.Add(`{"Stragglers":[{"Lane":"gpu","Factor":1e308}]}`)
	f.Add(`{"Stragglers":[{"Lane":"gpu","Factor":-1}]}`)
	f.Add(`{"Checkpoint":{"Interval":1e-300}}`)
	f.Fuzz(func(t *testing.T, s string) {
		p, err := Parse(s)
		if err != nil {
			return // rejected input is a correct outcome
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("Parse accepted a plan Validate rejects: %v\ninput: %q", verr, s)
		}
		sched, err := p.Compile(pipe(), 16)
		if err != nil {
			return // stacked-multiplier overflow is a legitimate rejection
		}
		for tgt := 0; tgt < len(pipe()); tgt++ {
			for step := 0; step < 16; step++ {
				m := sched.Mult(tgt, step)
				if math.IsNaN(m) || math.IsInf(m, 0) || m < 1 {
					t.Fatalf("Mult(%d,%d) = %v from valid plan %q", tgt, step, m, s)
				}
				n, cost := sched.Retries(tgt, step)
				if n < 0 || math.IsNaN(cost) || cost < 0 {
					t.Fatalf("Retries(%d,%d) = %d, %v from valid plan %q", tgt, step, n, cost, s)
				}
			}
		}
	})
}
