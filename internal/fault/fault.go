// Package fault is the deterministic fault model for the training
// simulator: a Plan declares straggler lanes, degraded or flapping
// interconnect links, transient kernel failures with retry cost, node
// preemptions at given simulated times, and a checkpoint/restart cost
// model. Plans are pure data — seed-driven and free of wall-clock or
// global randomness — so the same plan compiled against the same
// pipeline always yields the same schedule, which is what makes fault
// runs replayable byte for byte across processes and worker counts.
//
// The simulator compiles a Plan against its stage pipeline (one Target
// per stage) into a Schedule of per-stage, per-step service-time
// multipliers and retry draws; checkpoint and preemption economics stay
// on the Plan and are charged by the simulator's time-to-train
// accounting (see internal/sim).
package fault

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"strings"

	"mlperf/internal/units"
)

// Straggler slows one pipeline station down by a constant factor over a
// step range — the "one slow worker" failure mode synchronized data
// parallelism is maximally exposed to.
type Straggler struct {
	// Lane names the station (lane name such as "gpu", or a stage kind
	// such as "compute") the slowdown applies to.
	Lane string
	// Factor multiplies the station's service time (>= 1).
	Factor float64
	// FromStep/ToStep bound the affected steps as [From, To); ToStep 0
	// means "until the end of the run".
	FromStep, ToStep int
}

// LinkFault derates an interconnect-bound station to a fraction of its
// bandwidth, optionally flapping on a fixed step period.
type LinkFault struct {
	// Lane names the degraded station ("pcie-h2d", or a stage kind such
	// as "allreduce" to hit only the collective).
	Lane string
	// BandwidthFrac is the remaining bandwidth fraction in (0, 1]; the
	// affected service time is divided by it.
	BandwidthFrac float64
	// Period and Up describe flapping: the link is degraded for Up steps
	// out of every Period. Period 0 means permanently degraded.
	Period, Up int
}

// Transient injects retryable kernel failures: each step the targeted
// stage fails with probability Prob, and every failure costs one fixed
// RetryCost plus a re-execution of the stage.
type Transient struct {
	// Lane names the affected station or stage kind.
	Lane string
	// Prob is the per-step failure probability in [0, 1).
	Prob float64
	// RetryCost is the fixed seconds lost per retry attempt (error
	// detection, re-launch) on top of re-executing the stage.
	RetryCost float64
	// MaxRetries caps retries per step (0 = default 3).
	MaxRetries int
}

// Preemption takes the node away at a simulated time; the run resumes
// after RestartDelay plus replay of the work lost since the last
// checkpoint (per the Plan's Checkpoint policy).
type Preemption struct {
	// At is the preemption's simulated time in seconds.
	At float64
	// RestartDelay is the re-provision + restore time in seconds.
	RestartDelay float64
}

// Checkpoint is the checkpoint/restart cost model: periodic snapshots
// buy a bounded replay window at the price of a per-interval write.
type Checkpoint struct {
	// Interval is seconds of training between snapshots (0 = no
	// checkpointing: a preemption replays the run from scratch).
	Interval float64
	// SnapshotBytes is the snapshot size; 0 derives it from the model's
	// parameter + optimizer-state footprint.
	SnapshotBytes units.Bytes
	// WriteBW is the snapshot write bandwidth (0 = 2 GB/s).
	WriteBW units.BytesPerSecond
	// ReplayFrac is the fraction of lost wall time replayed on restart
	// in [0, 1] (1 = full recompute of the lost window).
	ReplayFrac float64
}

// defaultWriteBW is the snapshot write bandwidth assumed when the plan
// leaves Checkpoint.WriteBW zero — a local NVMe-class 2 GB/s.
const defaultWriteBW = units.BytesPerSecond(2 * units.GB)

// defaultMaxRetries caps a Transient's retries per step when the plan
// leaves MaxRetries zero.
const defaultMaxRetries = 3

// Plan is a full fault scenario. The zero Plan is valid and empty:
// simulating with it is exactly the fault-free path.
type Plan struct {
	// Seed drives every random draw (transient failures). Equal plans
	// with equal seeds replay identically.
	Seed        int64
	Stragglers  []Straggler
	Links       []LinkFault
	Transients  []Transient
	Preemptions []Preemption
	Checkpoint  Checkpoint
}

// Empty reports whether the plan injects nothing — the simulator routes
// empty plans through the unmodified fault-free pipeline.
func (p *Plan) Empty() bool {
	if p == nil {
		return true
	}
	return len(p.Stragglers) == 0 && len(p.Links) == 0 &&
		len(p.Transients) == 0 && len(p.Preemptions) == 0 &&
		p.Checkpoint.Interval == 0
}

// bad reports a non-finite or out-of-domain float.
func bad(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }

// Validate reports the first configuration error. A valid plan can
// never produce NaN or negative service times.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for i, s := range p.Stragglers {
		if bad(s.Factor) || s.Factor < 1 {
			return fmt.Errorf("fault: straggler %d factor %v (want >= 1)", i, s.Factor)
		}
		if s.FromStep < 0 || s.ToStep < 0 {
			return fmt.Errorf("fault: straggler %d negative step bound", i)
		}
		if s.ToStep > 0 && s.ToStep <= s.FromStep {
			return fmt.Errorf("fault: straggler %d empty step range [%d, %d)", i, s.FromStep, s.ToStep)
		}
		if strings.TrimSpace(s.Lane) == "" {
			return fmt.Errorf("fault: straggler %d has no lane", i)
		}
	}
	for i, l := range p.Links {
		if bad(l.BandwidthFrac) || l.BandwidthFrac <= 0 || l.BandwidthFrac > 1 {
			return fmt.Errorf("fault: link %d bandwidth fraction %v outside (0,1]", i, l.BandwidthFrac)
		}
		if l.Period < 0 || l.Up < 0 || (l.Period > 0 && l.Up > l.Period) {
			return fmt.Errorf("fault: link %d flap %d/%d invalid", i, l.Up, l.Period)
		}
		if strings.TrimSpace(l.Lane) == "" {
			return fmt.Errorf("fault: link %d has no lane", i)
		}
	}
	for i, tr := range p.Transients {
		if bad(tr.Prob) || tr.Prob < 0 || tr.Prob >= 1 {
			return fmt.Errorf("fault: transient %d probability %v outside [0,1)", i, tr.Prob)
		}
		if bad(tr.RetryCost) || tr.RetryCost < 0 {
			return fmt.Errorf("fault: transient %d retry cost %v", i, tr.RetryCost)
		}
		if tr.MaxRetries < 0 {
			return fmt.Errorf("fault: transient %d negative retry cap", i)
		}
		if strings.TrimSpace(tr.Lane) == "" {
			return fmt.Errorf("fault: transient %d has no lane", i)
		}
	}
	for i, pr := range p.Preemptions {
		if bad(pr.At) || pr.At < 0 {
			return fmt.Errorf("fault: preemption %d at %v", i, pr.At)
		}
		if bad(pr.RestartDelay) || pr.RestartDelay < 0 {
			return fmt.Errorf("fault: preemption %d restart delay %v", i, pr.RestartDelay)
		}
	}
	c := p.Checkpoint
	if bad(c.Interval) || c.Interval < 0 {
		return fmt.Errorf("fault: checkpoint interval %v", c.Interval)
	}
	if c.SnapshotBytes < 0 {
		return fmt.Errorf("fault: checkpoint snapshot %v bytes", int64(c.SnapshotBytes))
	}
	if c.WriteBW < 0 {
		return fmt.Errorf("fault: checkpoint write bandwidth %v", float64(c.WriteBW))
	}
	if bad(c.ReplayFrac) || c.ReplayFrac < 0 || c.ReplayFrac > 1 {
		return fmt.Errorf("fault: checkpoint replay fraction %v outside [0,1]", c.ReplayFrac)
	}
	return nil
}

// Canon validates the plan and returns its canonical JSON encoding —
// the string form sweep cell keys embed, so equal plans hash equally in
// the memo cache. An empty plan canonicalizes to "".
func (p *Plan) Canon() (string, error) {
	if p.Empty() {
		return "", nil
	}
	if err := p.Validate(); err != nil {
		return "", err
	}
	b, err := json.Marshal(p)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// Parse decodes a plan from its JSON form ("" yields an empty plan) and
// validates it.
func Parse(s string) (*Plan, error) {
	p := &Plan{}
	if strings.TrimSpace(s) == "" {
		return p, nil
	}
	if err := json.Unmarshal([]byte(s), p); err != nil {
		return nil, fmt.Errorf("fault: bad plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// CheckpointCost returns the seconds one snapshot write costs, deriving
// the snapshot size from modelBytes when the plan does not fix it.
func (p *Plan) CheckpointCost(modelBytes units.Bytes) float64 {
	if p == nil || p.Checkpoint.Interval <= 0 {
		return 0
	}
	bytes := p.Checkpoint.SnapshotBytes
	if bytes <= 0 {
		bytes = modelBytes
	}
	bw := p.Checkpoint.WriteBW
	if bw <= 0 {
		bw = defaultWriteBW
	}
	return float64(bytes) / float64(bw)
}

// RestartCost returns the seconds one preemption at time `at` costs on
// top of the lost progress: the restart delay plus replay of the wall
// time since the last checkpoint (the whole run when checkpointing is
// off).
func (p *Plan) RestartCost(pr Preemption) float64 {
	lost := pr.At
	if iv := p.Checkpoint.Interval; iv > 0 {
		lost = math.Mod(pr.At, iv)
	}
	return pr.RestartDelay + p.Checkpoint.ReplayFrac*lost
}

// Target identifies one pipeline stage at compile time: the lane it
// occupies and its kind label. Plan entries match a target when their
// Lane equals either field.
type Target struct {
	Lane, Kind string
}

// matches reports whether a fault naming `where` hits the target.
func (t Target) matches(where string) bool {
	return where == t.Lane || where == t.Kind
}

// Activation is a fault turning on at a step — the simulator publishes
// one FaultInjected marker per activation so traces show onset edges,
// not one marker per affected step.
type Activation struct {
	// Step is the first affected step of this activation edge.
	Step int
	// Note is the human-readable description ("straggler gpu x2.00").
	Note string
}

// Schedule is a Plan compiled against a concrete pipeline: per-target,
// per-step service multipliers and retry draws, plus activation edges.
// A Schedule is immutable after Compile and safe to share.
type Schedule struct {
	plan    *Plan
	targets []Target
	steps   int
	// mult[t][s] scales target t's service at step s (1 = untouched).
	mult [][]float64
	// retries[t][s] is the retry count drawn for target t at step s.
	retries [][]int
	// retryCost[t] is the fixed per-retry cost for target t.
	retryCost []float64
	// activations[t] are target t's fault onset edges in step order.
	activations [][]Activation
}

// Compile resolves the plan against a pipeline of targets over the
// given step count. The plan must be valid; compilation is pure and
// deterministic in (plan, targets, steps).
func (p *Plan) Compile(targets []Target, steps int) (*Schedule, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if steps < 0 {
		return nil, fmt.Errorf("fault: negative step count %d", steps)
	}
	s := &Schedule{
		plan:        p,
		targets:     targets,
		steps:       steps,
		mult:        make([][]float64, len(targets)),
		retries:     make([][]int, len(targets)),
		retryCost:   make([]float64, len(targets)),
		activations: make([][]Activation, len(targets)),
	}
	for t := range targets {
		s.mult[t] = make([]float64, steps)
		for i := range s.mult[t] {
			s.mult[t][i] = 1
		}
		s.retries[t] = make([]int, steps)
	}

	for _, str := range p.Stragglers {
		to := str.ToStep
		if to <= 0 || to > steps {
			to = steps
		}
		for t, tgt := range targets {
			if !tgt.matches(str.Lane) {
				continue
			}
			if str.FromStep < to {
				s.activations[t] = append(s.activations[t], Activation{
					Step: str.FromStep,
					Note: fmt.Sprintf("straggler %s x%.2f", str.Lane, str.Factor),
				})
			}
			for step := str.FromStep; step < to; step++ {
				s.mult[t][step] *= str.Factor
			}
		}
	}

	for _, l := range p.Links {
		slow := 1 / l.BandwidthFrac
		for t, tgt := range targets {
			if !tgt.matches(l.Lane) {
				continue
			}
			note := fmt.Sprintf("degraded link %s bw x%.2f", l.Lane, l.BandwidthFrac)
			prev := false
			for step := 0; step < steps; step++ {
				on := true
				if l.Period > 0 {
					on = step%l.Period < l.Up
				}
				if on && !prev {
					s.activations[t] = append(s.activations[t], Activation{Step: step, Note: note})
				}
				if on {
					s.mult[t][step] *= slow
				}
				prev = on
			}
		}
	}

	// Transient draws consume the seeded stream in (transient, target,
	// step) order — a fixed traversal, so the same plan always draws the
	// same failures regardless of who runs the simulation.
	rng := rand.New(rand.NewSource(p.Seed))
	for _, tr := range p.Transients {
		limit := tr.MaxRetries
		if limit <= 0 {
			limit = defaultMaxRetries
		}
		for t, tgt := range targets {
			if !tgt.matches(tr.Lane) {
				continue
			}
			s.retryCost[t] = tr.RetryCost
			for step := 0; step < steps; step++ {
				n := 0
				for n < limit && rng.Float64() < tr.Prob {
					n++
				}
				if n > 0 {
					s.retries[t][step] += n
					s.activations[t] = append(s.activations[t], Activation{
						Step: step,
						Note: fmt.Sprintf("transient %s x%d", tr.Lane, n),
					})
				}
			}
		}
	}

	// Stacked faults multiply; reject a schedule whose product escaped
	// the finite domain rather than hand the simulator an Inf service
	// time.
	for t := range targets {
		for step := 0; step < steps; step++ {
			if bad(s.mult[t][step]) {
				return nil, fmt.Errorf("fault: stacked multipliers overflow on %s at step %d", targets[t].Lane, step)
			}
		}
	}
	return s, nil
}

// Plan returns the compiled plan.
func (s *Schedule) Plan() *Plan { return s.plan }

// Steps returns the compiled step count.
func (s *Schedule) Steps() int { return s.steps }

// Mult returns target t's service multiplier at step (1 outside the
// compiled range).
func (s *Schedule) Mult(t, step int) float64 {
	if t < 0 || t >= len(s.mult) || step < 0 || step >= s.steps {
		return 1
	}
	return s.mult[t][step]
}

// Retries returns target t's retry count and fixed per-retry cost at
// step.
func (s *Schedule) Retries(t, step int) (n int, cost float64) {
	if t < 0 || t >= len(s.retries) || step < 0 || step >= s.steps {
		return 0, 0
	}
	return s.retries[t][step], s.retryCost[t]
}

// ActivationsAt returns target t's fault onsets at exactly this step.
func (s *Schedule) ActivationsAt(t, step int) []Activation {
	if t < 0 || t >= len(s.activations) {
		return nil
	}
	var out []Activation
	for _, a := range s.activations[t] {
		if a.Step == step {
			out = append(out, a)
		}
	}
	return out
}

// MaxEffectStep returns the last step index at which the schedule
// perturbs any target — a service multiplier different from 1, a drawn
// retry, or an activation edge — or -1 when the schedule is effect-free.
// Every step past it executes exactly as an un-faulted pipeline would,
// which is what lets the simulator's analytic fast path collapse the
// remaining window after a faulty warm-up prefix.
func (s *Schedule) MaxEffectStep() int {
	last := -1
	for t := range s.mult {
		for step := s.steps - 1; step > last; step-- {
			if s.mult[t][step] != 1 || s.retries[t][step] != 0 {
				last = step
				break
			}
		}
		for _, a := range s.activations[t] {
			if a.Step > last {
				last = a.Step
			}
		}
	}
	return last
}
