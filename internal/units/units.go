// Package units provides the physical quantities the rest of the library
// trades in: byte counts, floating-point operation counts, bandwidths and
// rates. Every quantity is a distinct type so that a bandwidth can never be
// accidentally added to a byte count, and each knows how to format itself
// the way the paper's tables do (MB, Mbps, GFLOPS, minutes).
package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Bytes is a data size in bytes.
type Bytes float64

// Common byte sizes.
const (
	KiB Bytes = 1 << 10
	MiB Bytes = 1 << 20
	GiB Bytes = 1 << 30
	TiB Bytes = 1 << 40

	KB Bytes = 1e3
	MB Bytes = 1e6
	GB Bytes = 1e9
	TB Bytes = 1e12
)

// MB returns the size in (decimal) megabytes, the unit Table V uses for
// memory footprints.
func (b Bytes) MB() float64 { return float64(b) / 1e6 }

// MiB returns the size in binary mebibytes.
func (b Bytes) MiB() float64 { return float64(b) / float64(MiB) }

// GB returns the size in (decimal) gigabytes.
func (b Bytes) GB() float64 { return float64(b) / 1e9 }

// String renders the size with a human-readable decimal suffix.
func (b Bytes) String() string {
	abs := math.Abs(float64(b))
	switch {
	case abs >= 1e12:
		return fmt.Sprintf("%.2fTB", float64(b)/1e12)
	case abs >= 1e9:
		return fmt.Sprintf("%.2fGB", float64(b)/1e9)
	case abs >= 1e6:
		return fmt.Sprintf("%.2fMB", float64(b)/1e6)
	case abs >= 1e3:
		return fmt.Sprintf("%.2fKB", float64(b)/1e3)
	default:
		return fmt.Sprintf("%.0fB", float64(b))
	}
}

// FLOPs is a count of floating-point operations.
type FLOPs float64

// Common FLOP counts.
const (
	KFLOP FLOPs = 1e3
	MFLOP FLOPs = 1e6
	GFLOP FLOPs = 1e9
	TFLOP FLOPs = 1e12
)

// G returns the count in GFLOPs.
func (f FLOPs) G() float64 { return float64(f) / 1e9 }

// T returns the count in TFLOPs.
func (f FLOPs) T() float64 { return float64(f) / 1e12 }

// String renders the count with a human-readable suffix.
func (f FLOPs) String() string {
	abs := math.Abs(float64(f))
	switch {
	case abs >= 1e12:
		return fmt.Sprintf("%.2fTFLOP", float64(f)/1e12)
	case abs >= 1e9:
		return fmt.Sprintf("%.2fGFLOP", float64(f)/1e9)
	case abs >= 1e6:
		return fmt.Sprintf("%.2fMFLOP", float64(f)/1e6)
	default:
		return fmt.Sprintf("%.0fFLOP", float64(f))
	}
}

// BytesPerSecond is a bandwidth.
type BytesPerSecond float64

// Common bandwidths.
const (
	KBps BytesPerSecond = 1e3
	MBps BytesPerSecond = 1e6
	GBps BytesPerSecond = 1e9
)

// Mbps returns the bandwidth in megabits per second, the unit Table V uses
// for bus utilization.
func (r BytesPerSecond) Mbps() float64 { return float64(r) * 8 / 1e6 }

// GBs returns the bandwidth in gigabytes per second.
func (r BytesPerSecond) GBs() float64 { return float64(r) / 1e9 }

// String renders the bandwidth in GB/s or MB/s as appropriate.
func (r BytesPerSecond) String() string {
	if math.Abs(float64(r)) >= 1e9 {
		return fmt.Sprintf("%.1fGB/s", float64(r)/1e9)
	}
	return fmt.Sprintf("%.1fMB/s", float64(r)/1e6)
}

// FLOPSRate is a compute throughput in FLOP/s.
type FLOPSRate float64

// Common compute throughputs.
const (
	GFLOPS FLOPSRate = 1e9
	TFLOPS FLOPSRate = 1e12
)

// G returns the rate in GFLOP/s.
func (r FLOPSRate) G() float64 { return float64(r) / 1e9 }

// T returns the rate in TFLOP/s.
func (r FLOPSRate) T() float64 { return float64(r) / 1e12 }

// String renders the throughput.
func (r FLOPSRate) String() string {
	if math.Abs(float64(r)) >= 1e12 {
		return fmt.Sprintf("%.2fTFLOPS", float64(r)/1e12)
	}
	return fmt.Sprintf("%.1fGFLOPS", float64(r)/1e9)
}

// Intensity is an arithmetic intensity in FLOPs per byte — the roofline
// x-axis.
type Intensity float64

// String renders the intensity.
func (i Intensity) String() string { return fmt.Sprintf("%.2fFLOP/B", float64(i)) }

// IntensityOf computes arithmetic intensity, returning 0 for zero traffic
// (DeepBench's all-reduce kernel performs no floating-point math, so both
// axes can be degenerate).
func IntensityOf(f FLOPs, b Bytes) Intensity {
	if b <= 0 {
		return 0
	}
	return Intensity(float64(f) / float64(b))
}

// Time computes how long moving b bytes takes at bandwidth r. A zero or
// negative bandwidth yields +Inf, representing an unreachable resource.
func (r BytesPerSecond) Time(b Bytes) time.Duration {
	if r <= 0 {
		return Forever
	}
	return Seconds(float64(b) / float64(r))
}

// Time computes how long f FLOPs take at rate r. A zero or negative rate
// yields +Inf.
func (r FLOPSRate) Time(f FLOPs) time.Duration {
	if r <= 0 {
		return Forever
	}
	return Seconds(float64(f) / float64(r))
}

// Forever is the sentinel duration for unreachable resources.
const Forever = time.Duration(math.MaxInt64)

// Seconds converts a float second count to a time.Duration, saturating at
// Forever instead of overflowing.
func Seconds(s float64) time.Duration {
	if math.IsInf(s, 1) || s > float64(math.MaxInt64)/float64(time.Second) {
		return Forever
	}
	if s < 0 {
		return 0
	}
	return time.Duration(s * float64(time.Second))
}

// Minutes renders a duration as fractional minutes, the unit of Table IV.
func Minutes(d time.Duration) float64 { return d.Minutes() }

// ParseBytes parses strings such as "16GB", "300MB", "1.5TiB". It accepts
// both decimal (KB/MB/GB/TB) and binary (KiB/MiB/GiB/TiB) suffixes and a
// bare number meaning bytes.
func ParseBytes(s string) (Bytes, error) {
	s = strings.TrimSpace(s)
	suffixes := []struct {
		suffix string
		mult   Bytes
	}{
		{"TiB", TiB}, {"GiB", GiB}, {"MiB", MiB}, {"KiB", KiB},
		{"TB", TB}, {"GB", GB}, {"MB", MB}, {"KB", KB},
		{"B", 1},
	}
	for _, sf := range suffixes {
		if strings.HasSuffix(s, sf.suffix) {
			num := strings.TrimSpace(strings.TrimSuffix(s, sf.suffix))
			v, err := strconv.ParseFloat(num, 64)
			if err != nil {
				return 0, fmt.Errorf("units: parse %q: %w", s, err)
			}
			return Bytes(v) * sf.mult, nil
		}
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("units: parse %q: %w", s, err)
	}
	return Bytes(v), nil
}

// Percent is a utilization percentage. Multi-GPU utilizations in Table V sum
// per-device percentages, so values above 100 are meaningful.
type Percent float64

// String renders the percentage with two decimals, matching Table V.
func (p Percent) String() string { return fmt.Sprintf("%.2f%%", float64(p)) }

// Clamp limits the percentage to [0, max].
func (p Percent) Clamp(max Percent) Percent {
	if p < 0 {
		return 0
	}
	if p > max {
		return max
	}
	return p
}
