package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestBytesConversions(t *testing.T) {
	cases := []struct {
		in     Bytes
		wantMB float64
		wantGB float64
	}{
		{1e6, 1, 1e-3},
		{16 * GB, 16000, 16},
		{0, 0, 0},
	}
	for _, c := range cases {
		if got := c.in.MB(); got != c.wantMB {
			t.Errorf("(%v).MB() = %v, want %v", c.in, got, c.wantMB)
		}
		if got := c.in.GB(); got != c.wantGB {
			t.Errorf("(%v).GB() = %v, want %v", c.in, got, c.wantGB)
		}
	}
}

func TestBytesString(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{512, "512B"},
		{2 * KB, "2.00KB"},
		{300 * MB, "300.00MB"},
		{16 * GB, "16.00GB"},
		{1.5 * TB, "1.50TB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Bytes(%g).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestFLOPsString(t *testing.T) {
	cases := []struct {
		in   FLOPs
		want string
	}{
		{100, "100FLOP"},
		{3.9 * GFLOP, "3.90GFLOP"},
		{15.7 * TFLOP, "15.70TFLOP"},
		{2 * MFLOP, "2.00MFLOP"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("FLOPs.String() = %q, want %q", got, c.want)
		}
	}
}

func TestBandwidthMbps(t *testing.T) {
	// 1 MB/s = 8 Mbps. Table V reports Mbps.
	if got := (1 * MBps).Mbps(); got != 8 {
		t.Errorf("1MBps = %v Mbps, want 8", got)
	}
	if got := (15.8 * GBps).Mbps(); math.Abs(got-126400) > 1e-6 {
		t.Errorf("15.8GBps = %v Mbps, want 126400", got)
	}
}

func TestTimeComputation(t *testing.T) {
	// 1 GB at 1 GB/s is one second.
	if got := (1 * GBps).Time(1 * GB); got != time.Second {
		t.Errorf("transfer time = %v, want 1s", got)
	}
	// 15.7 TFLOP at 15.7 TFLOPS is one second.
	if got := (15.7 * TFLOPS).Time(15.7 * TFLOP); got != time.Second {
		t.Errorf("compute time = %v, want 1s", got)
	}
	if got := BytesPerSecond(0).Time(1 * GB); got != Forever {
		t.Errorf("zero bandwidth = %v, want Forever", got)
	}
	if got := FLOPSRate(-1).Time(1 * GFLOP); got != Forever {
		t.Errorf("negative rate = %v, want Forever", got)
	}
}

func TestSecondsSaturation(t *testing.T) {
	if got := Seconds(math.Inf(1)); got != Forever {
		t.Errorf("Seconds(+Inf) = %v, want Forever", got)
	}
	if got := Seconds(-3); got != 0 {
		t.Errorf("Seconds(-3) = %v, want 0", got)
	}
	if got := Seconds(1.5); got != 1500*time.Millisecond {
		t.Errorf("Seconds(1.5) = %v, want 1.5s", got)
	}
}

func TestIntensityOf(t *testing.T) {
	if got := IntensityOf(100, 50); got != 2 {
		t.Errorf("IntensityOf(100,50) = %v, want 2", got)
	}
	// DeepBench's all-reduce kernel: zero FLOPs is fine, zero bytes must not
	// divide by zero.
	if got := IntensityOf(0, 1000); got != 0 {
		t.Errorf("IntensityOf(0,1000) = %v, want 0", got)
	}
	if got := IntensityOf(100, 0); got != 0 {
		t.Errorf("IntensityOf(100,0) = %v, want 0", got)
	}
}

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want Bytes
	}{
		{"16GB", 16 * GB},
		{"32GiB", 32 * GiB},
		{"300 MB", 300 * MB},
		{"1.5TB", 1.5 * TB},
		{"1024", 1024},
		{"7B", 7},
	}
	for _, c := range cases {
		got, err := ParseBytes(c.in)
		if err != nil {
			t.Fatalf("ParseBytes(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("ParseBytes(%q) = %v, want %v", c.in, float64(got), float64(c.want))
		}
	}
	if _, err := ParseBytes("twelve"); err == nil {
		t.Error("ParseBytes(twelve) succeeded, want error")
	}
	if _, err := ParseBytes("xGB"); err == nil {
		t.Error("ParseBytes(xGB) succeeded, want error")
	}
}

// Property: formatting a size and parsing it back stays within rounding
// error of the 2-decimal rendering.
func TestParseFormatRoundTrip(t *testing.T) {
	f := func(raw uint32) bool {
		b := Bytes(raw)
		parsed, err := ParseBytes(b.String())
		if err != nil {
			return false
		}
		if b == 0 {
			return parsed == 0
		}
		rel := math.Abs(float64(parsed-b)) / float64(b)
		return rel < 0.01 // two-decimal rendering loses <1%
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: transfer time scales linearly with size.
func TestTransferTimeLinear(t *testing.T) {
	f := func(rawSize uint16, rawBW uint16) bool {
		size := Bytes(rawSize) + 1
		bw := BytesPerSecond(rawBW) + 1
		t1 := bw.Time(size)
		t2 := bw.Time(2 * size)
		diff := math.Abs(float64(t2) - 2*float64(t1))
		return diff <= 2 // nanosecond rounding
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentClamp(t *testing.T) {
	if got := Percent(150).Clamp(100); got != 100 {
		t.Errorf("clamp(150,100) = %v", got)
	}
	if got := Percent(-5).Clamp(100); got != 0 {
		t.Errorf("clamp(-5,100) = %v", got)
	}
	if got := Percent(350).Clamp(400); got != 350 {
		t.Errorf("clamp(350,400) = %v", got)
	}
}

func TestPercentString(t *testing.T) {
	if got := Percent(85.84).String(); got != "85.84%" {
		t.Errorf("Percent.String() = %q", got)
	}
}
