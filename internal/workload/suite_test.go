package workload

import (
	"strings"
	"testing"

	"mlperf/internal/hw"
	"mlperf/internal/sim"
)

func TestRegistryShape(t *testing.T) {
	all := All()
	if len(all) != 13 {
		t.Fatalf("%d benchmarks, want 13 (7 MLPerf + 2 DAWNBench + 4 DeepBench)", len(all))
	}
	counts := map[Suite]int{}
	for _, b := range all {
		counts[b.Suite]++
	}
	if counts[MLPerf] != 7 || counts[DAWNBench] != 2 || counts[DeepBench] != 4 {
		t.Errorf("suite counts = %v", counts)
	}
}

func TestTableIIMetadata(t *testing.T) {
	// Spot-check the Table II columns.
	cases := []struct {
		abbrev, domain, model, framework, submitter, target string
	}{
		{"MLPf_Res50_TF", "Image Classification", "ResNet-50", "TensorFlow", "Google", "Accuracy: 0.749"},
		{"MLPf_NCF_Py", "Recommendation", "Neural Collaborative Filtering", "PyTorch", "NVIDIA", "Hit rate @10: 0.635"},
		{"Dawn_DrQA_Py", "Question Answering", "DrQA", "PyTorch", "Yang et al.", "F1: 0.75"},
		{"Deep_Red_Cu", "Communication (AllReduce)", "nccl_single_all_reduce", "CUDA", "Baidu/NVIDIA", "n/a"},
	}
	for _, c := range cases {
		b, err := ByName(c.abbrev)
		if err != nil {
			t.Fatal(err)
		}
		if b.Domain != c.domain || b.ModelName != c.model || b.Framework != c.framework ||
			b.Submitter != c.submitter || b.QualityTarget != c.target {
			t.Errorf("%s metadata = %+v", c.abbrev, b)
		}
	}
}

func TestByNameShortForms(t *testing.T) {
	for _, name := range []string{"res50_tf", "RES50_MX", "ssd_py", "mrcnn_py",
		"xfmr_py", "gnmt_py", "ncf_py", "res18_py", "drqa_py",
		"gemm_cu", "conv_cu", "rnn_cu", "red_cu"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("bert"); err == nil {
		t.Error("unknown benchmark accepted")
	} else if !strings.Contains(err.Error(), "MLPf_Res50_TF") {
		t.Error("error should list available names")
	}
}

func TestEveryJobValid(t *testing.T) {
	for _, b := range All() {
		job := b.Job
		if err := job.Validate(); err != nil {
			t.Errorf("%s: %v", b.Abbrev, err)
		}
		if b.Job.Net == nil || b.Job.Data.TrainSamples <= 0 {
			t.Errorf("%s: incomplete job", b.Abbrev)
		}
	}
}

func TestReferenceJobsExistForTableIV(t *testing.T) {
	// Exactly the Table IV benchmarks carry a reference (P100) job.
	want := map[string]bool{
		"MLPf_Res50_TF": true, "MLPf_Res50_MX": true, "MLPf_SSD_Py": true,
		"MLPf_MRCNN_Py": true, "MLPf_XFMR_Py": true, "MLPf_NCF_Py": true,
		"MLPf_GNMT_Py": true, // GNMT has a reference too (not in Table IV)
	}
	for _, b := range All() {
		hasRef := b.RefJob.Net != nil
		if want[b.Abbrev] && !hasRef {
			t.Errorf("%s: missing reference job", b.Abbrev)
		}
		if !want[b.Abbrev] && hasRef && b.Suite != MLPerf {
			t.Errorf("%s: unexpected reference job", b.Abbrev)
		}
	}
}

func TestEveryBenchmarkSimulates(t *testing.T) {
	// Every registry entry must run on every system without error.
	for _, sys := range hw.AllSystems() {
		for _, b := range All() {
			res, err := sim.Run(sim.Config{System: sys, GPUCount: 1, Job: b.Job})
			if err != nil {
				t.Fatalf("%s on %s: %v", b.Abbrev, sys.Name, err)
			}
			if res.TimeToTrain <= 0 {
				t.Errorf("%s on %s: non-positive time-to-train", b.Abbrev, sys.Name)
			}
		}
	}
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	if len(names) != 13 {
		t.Fatalf("%d names", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Error("Names() not sorted")
		}
	}
}

func TestCalibrationSanity(t *testing.T) {
	// Calibrated efficiencies must stay physical: no fraction above 1,
	// overlap within [0,1], positive batch and epochs.
	for _, b := range All() {
		j := b.Job
		p := j.Precision
		for name, v := range map[string]float64{
			"EligibleFrac": p.EligibleFrac, "MathEff": p.MathEff,
			"TensorEff": p.TensorEff, "MemEff": p.MemEff,
		} {
			if v < 0 || v > 1 {
				t.Errorf("%s: %s = %v outside [0,1]", b.Abbrev, name, v)
			}
		}
		if j.OverlapComm < 0 || j.OverlapComm > 1 {
			t.Errorf("%s: overlap %v", b.Abbrev, j.OverlapComm)
		}
		if j.Imbalance < 0 || j.Imbalance > 1 {
			t.Errorf("%s: imbalance %v", b.Abbrev, j.Imbalance)
		}
	}
}

func TestPaperDataConsistency(t *testing.T) {
	// The recorded paper tables must cover the registry.
	if len(TableIV) != 6 {
		t.Errorf("Table IV rows = %d, want 6", len(TableIV))
	}
	for _, p := range TableIV {
		if _, err := ByName(p.Bench); err != nil {
			t.Errorf("Table IV names unknown benchmark %s", p.Bench)
		}
		if p.PtoV <= 0 || p.S8 <= 0 {
			t.Errorf("degenerate paper row %+v", p)
		}
	}
	seen := map[string]bool{}
	for _, p := range TableV {
		if _, err := ByName(p.Bench); err != nil {
			t.Errorf("Table V names unknown benchmark %s", p.Bench)
		}
		seen[p.Bench] = true
	}
	if len(seen) != 13 {
		t.Errorf("Table V covers %d benchmarks, want 13", len(seen))
	}
	for bench := range PaperMixedPrecision {
		if _, err := ByName(bench); err != nil {
			t.Errorf("Figure 3 names unknown benchmark %s", bench)
		}
	}
}

func TestNCFBatchCap(t *testing.T) {
	b, err := ByName("ncf_py")
	if err != nil {
		t.Fatal(err)
	}
	if b.Job.MaxGlobalBatch == 0 {
		t.Error("NCF must carry the global-batch cap that limits its scaling (§IV-D)")
	}
	// At 8 GPUs the local batch must shrink below the reference batch.
	if got := b.Job.LocalBatchFor(8); got >= b.Job.BatchPerGPU {
		t.Errorf("NCF local batch at 8 GPUs = %d, not capped", got)
	}
}

func TestExtensionsMiniGo(t *testing.T) {
	exts := Extensions()
	if len(exts) != 1 || exts[0].Abbrev != "MLPf_MiniGo_RL" {
		t.Fatalf("extensions = %v", exts)
	}
	mg := exts[0]
	if mg.Domain != "Reinforcement Learning" {
		t.Errorf("domain = %s", mg.Domain)
	}
	if err := mg.Job.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{System: hw.DSS8440(), GPUCount: 4, Job: mg.Job})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimeToTrain <= 0 {
		t.Error("minigo extension does not simulate")
	}
	// Must stay excluded from the paper's study set.
	if _, err := ByName("MLPf_MiniGo_RL"); err == nil {
		t.Error("extension leaked into the paper registry")
	}
}
