package workload

// This file records the paper's reported measurements verbatim. They are
// the comparison targets for EXPERIMENTS.md and the shape-tests — never
// inputs to the simulator itself (the simulator derives its numbers from
// the hardware and layer-graph models plus the calibration constants in
// calibrate.go).

// PaperScaling is one Table IV row.
type PaperScaling struct {
	Bench string
	// P100Min and V100Min are single-GPU training minutes.
	P100Min, V100Min float64
	// PtoV is the P100-to-V100 speedup.
	PtoV float64
	// S2, S4, S8 are the 1-to-2/4/8 GPU speedups on the DSS 8440.
	S2, S4, S8 float64
}

// TableIV reproduces the paper's Table IV.
var TableIV = []PaperScaling{
	{"MLPf_Res50_TF", 8831.3, 1016.9, 8.68, 1.92, 3.84, 7.04},
	{"MLPf_Res50_MX", 8831.1, 957.0, 9.23, 1.92, 3.76, 5.92},
	{"MLPf_SSD_Py", 827.7, 206.1, 4.02, 1.94, 3.72, 7.28},
	{"MLPf_MRCNN_Py", 4999.5, 1840.4, 2.72, 1.76, 2.64, 5.60},
	{"MLPf_XFMR_Py", 1869.8, 636.0, 2.94, 1.42, 2.92, 5.60},
	{"MLPf_NCF_Py", 46.7, 2.2, 21.23, 1.88, 2.16, 2.32},
}

// PaperUsage is one Table V row group (C4140 (K), per GPU count).
type PaperUsage struct {
	Bench string
	GPUs  int
	// CPUPct and GPUPct are utilization percentages (GPU summed over
	// devices).
	CPUPct, GPUPct float64
	// DRAMMB and HBMMB are footprints in MB.
	DRAMMB, HBMMB float64
	// PCIeMbps and NVLinkMbps are bus rates in Mbps.
	PCIeMbps, NVLinkMbps float64
}

// TableV reproduces the paper's Table V (rows mapped to benchmarks in
// narrative order: §V-A names Res50_TF the highest CPU user, NCF the
// lowest; §V-D names NCF and Deep_Red the heaviest NVLink users and SSD
// the lightest).
var TableV = []PaperUsage{
	{"MLPf_Res50_TF", 1, 10.76, 85.84, 17922, 15927, 1251, 0},
	{"MLPf_Res50_TF", 2, 16.25, 188.08, 18521, 31896, 2609, 967},
	{"MLPf_Res50_TF", 4, 29.06, 372.43, 19970, 62214, 4269, 2867},
	{"MLPf_Res50_MX", 1, 4.56, 85.84, 7091, 10343, 1251, 0},
	{"MLPf_Res50_MX", 2, 9.16, 190.90, 14924, 20605, 6913, 1871},
	{"MLPf_Res50_MX", 4, 18.12, 378.94, 28781, 40959, 11480, 21755},
	{"MLPf_SSD_Py", 1, 3.89, 96.13, 4100, 15406, 4720, 0},
	{"MLPf_SSD_Py", 2, 7.21, 180.58, 10305, 30772, 6998, 509},
	{"MLPf_SSD_Py", 4, 13.69, 334.84, 20273, 60539, 9791, 1500},
	{"MLPf_MRCNN_Py", 1, 2.45, 62.46, 7208, 4762, 258, 0},
	{"MLPf_MRCNN_Py", 2, 4.83, 144.40, 13561, 15933, 2219, 2472},
	{"MLPf_MRCNN_Py", 4, 10.39, 283.88, 24923, 33935, 3444, 6547},
	{"MLPf_XFMR_Py", 1, 1.80, 91.14, 3992, 14926, 47, 0},
	{"MLPf_XFMR_Py", 2, 3.35, 189.30, 7167, 29493, 123, 11247},
	{"MLPf_XFMR_Py", 4, 6.39, 376.91, 14244, 58229, 249, 35862},
	{"MLPf_GNMT_Py", 1, 1.91, 89.94, 7210, 12098, 2743, 0},
	{"MLPf_GNMT_Py", 2, 3.32, 185.71, 13561, 24479, 4609, 1508},
	{"MLPf_GNMT_Py", 4, 6.41, 360.89, 24923, 46016, 7692, 33262},
	{"MLPf_NCF_Py", 1, 0.76, 96.39, 1550, 13870, 42, 0},
	{"MLPf_NCF_Py", 2, 2.41, 194.44, 3077, 24847, 110, 17887},
	{"MLPf_NCF_Py", 4, 5.69, 333.11, 5978, 39634, 200, 75051},
	{"Dawn_Res18_Py", 1, 4.67, 76.90, 2670, 2056, 176, 0},
	{"Dawn_DrQA_Py", 1, 48.84, 20.30, 6721, 2657, 52, 0},
	{"Deep_GEMM_Cu", 1, 1.80, 99.60, 333, 1067, 13, 0},
	{"Deep_Conv_Cu", 1, 1.73, 99.10, 948, 783, 13, 0},
	{"Deep_RNN_Cu", 1, 1.80, 94.80, 994, 2536, 3747, 0},
	{"Deep_Red_Cu", 1, 0.75, 91.30, 313, 631, 27, 0},
	{"Deep_Red_Cu", 2, 0.96, 193.20, 430, 994, 86, 77992},
	{"Deep_Red_Cu", 4, 1.68, 366.24, 1123, 2320, 134, 404376},
}

// PaperMixedPrecision holds Figure 3's speedups. The paper reports the
// endpoints explicitly (1.5x for MRCNN_Py, 3.3x for Res50_TF); the other
// bars are read off the figure and are approximate.
var PaperMixedPrecision = map[string]float64{
	"MLPf_Res50_TF": 3.3, // reported endpoint
	"MLPf_Res50_MX": 3.2,
	"MLPf_SSD_Py":   2.2,
	"MLPf_MRCNN_Py": 1.5, // reported endpoint
	"MLPf_XFMR_Py":  2.6,
	"MLPf_GNMT_Py":  2.2,
	"MLPf_NCF_Py":   1.3,
}

// PaperTopologyGain holds Figure 5's NVLink-over-worst-PCIe training-time
// improvements as fractions (§V-E: "42% and 17% for the Translation
// benchmarks, 30% for MLPf_MRCNN_Py to 11% for the Image Classification
// benchmarks"). The text does not say which translation model gets which
// number; we assign 42% to GNMT (recurrent backward overlaps NCCL poorly
// and its 800MB gradient volume is all exposed) and 17% to the
// Transformer, whose bucketed backward hides most of the collective.
var PaperTopologyGain = map[string]float64{
	"MLPf_XFMR_Py":  0.17,
	"MLPf_GNMT_Py":  0.42,
	"MLPf_MRCNN_Py": 0.30,
	"MLPf_Res50_TF": 0.11,
	"MLPf_Res50_MX": 0.11,
}

// PaperSchedulingSavingsHours holds Figure 4's optimal-vs-naive savings
// for the 7-benchmark mix: ~4.1h on 2 GPUs, ~3.0h on 4, ~0.4h on 8.
var PaperSchedulingSavingsHours = map[int]float64{
	2: 4.1,
	4: 3.0,
	8: 0.4,
}
