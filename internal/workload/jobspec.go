package workload

import (
	"encoding/json"
	"fmt"
	"io"

	"mlperf/internal/precision"
	"mlperf/internal/sim"
)

// JobSpec is a JSON-serializable override set on top of a registered
// benchmark — how downstream users run custom configurations ("ResNet-50
// but batch 512 and no AMP") without writing Go:
//
//	{
//	  "base": "MLPf_Res50_TF",
//	  "batch_per_gpu": 512,
//	  "precision": "fp32",
//	  "overlap_comm": 0.9
//	}
//
// Zero-valued fields keep the base benchmark's calibrated value.
type JobSpec struct {
	// Base names the registered benchmark to start from (required).
	Base string `json:"base"`
	// BatchPerGPU overrides the per-GPU minibatch.
	BatchPerGPU int `json:"batch_per_gpu,omitempty"`
	// MaxGlobalBatch overrides the global batch cap (-1 removes it).
	MaxGlobalBatch int `json:"max_global_batch,omitempty"`
	// Epochs overrides epochs-to-target.
	Epochs float64 `json:"epochs,omitempty"`
	// Precision selects "fp32" or "mixed".
	Precision string `json:"precision,omitempty"`
	// OverlapComm overrides the all-reduce overlap (-1 forces 0).
	OverlapComm float64 `json:"overlap_comm,omitempty"`
	// InputWorkersPerGPU overrides the loader worker count.
	InputWorkersPerGPU int `json:"input_workers_per_gpu,omitempty"`
	// GreedyHBM overrides the allocator policy ("greedy"/"need").
	Allocator string `json:"allocator,omitempty"`
}

// ParseJobSpec decodes a JobSpec from JSON.
func ParseJobSpec(r io.Reader) (*JobSpec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var spec JobSpec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("workload: parse job spec: %w", err)
	}
	return &spec, nil
}

// Build resolves the base benchmark and applies the overrides.
func (s *JobSpec) Build() (sim.Job, error) {
	if s.Base == "" {
		return sim.Job{}, fmt.Errorf("workload: job spec needs a base benchmark")
	}
	b, err := ByName(s.Base)
	if err != nil {
		return sim.Job{}, err
	}
	job := b.Job
	if s.BatchPerGPU > 0 {
		job.BatchPerGPU = s.BatchPerGPU
	}
	if s.MaxGlobalBatch > 0 {
		job.MaxGlobalBatch = s.MaxGlobalBatch
	} else if s.MaxGlobalBatch < 0 {
		job.MaxGlobalBatch = 0
	}
	if s.Epochs > 0 {
		job.EpochsToTarget = s.Epochs
	}
	switch s.Precision {
	case "":
	case "fp32":
		job.Precision.Policy = precision.FP32
	case "mixed", "amp", "fp16":
		job.Precision.Policy = precision.AMP
	default:
		return sim.Job{}, fmt.Errorf("workload: unknown precision %q", s.Precision)
	}
	if s.OverlapComm > 0 {
		if s.OverlapComm > 1 {
			return sim.Job{}, fmt.Errorf("workload: overlap %v outside [0,1]", s.OverlapComm)
		}
		job.OverlapComm = s.OverlapComm
	} else if s.OverlapComm < 0 {
		job.OverlapComm = 0
	}
	if s.InputWorkersPerGPU > 0 {
		job.InputWorkersPerGPU = s.InputWorkersPerGPU
	}
	switch s.Allocator {
	case "":
	case "greedy":
		job.GreedyHBM = true
	case "need":
		job.GreedyHBM = false
	default:
		return sim.Job{}, fmt.Errorf("workload: unknown allocator %q", s.Allocator)
	}
	if err := job.Validate(); err != nil {
		return sim.Job{}, err
	}
	return job, nil
}
