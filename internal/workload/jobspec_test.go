package workload

import (
	"strings"
	"testing"

	"mlperf/internal/precision"
)

func TestJobSpecOverrides(t *testing.T) {
	spec, err := ParseJobSpec(strings.NewReader(`{
		"base": "MLPf_Res50_TF",
		"batch_per_gpu": 512,
		"precision": "fp32",
		"overlap_comm": 0.9,
		"allocator": "need"
	}`))
	if err != nil {
		t.Fatal(err)
	}
	job, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if job.BatchPerGPU != 512 {
		t.Errorf("batch = %d", job.BatchPerGPU)
	}
	if job.Precision.Policy != precision.FP32 {
		t.Error("precision override lost")
	}
	if job.OverlapComm != 0.9 {
		t.Errorf("overlap = %v", job.OverlapComm)
	}
	if job.GreedyHBM {
		t.Error("allocator override lost")
	}
	// Unspecified fields keep calibrated values.
	base, _ := ByName("MLPf_Res50_TF")
	if job.EpochsToTarget != base.Job.EpochsToTarget {
		t.Error("epochs changed without an override")
	}
}

func TestJobSpecDefaultsUntouched(t *testing.T) {
	spec := &JobSpec{Base: "ncf_py"}
	job, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	base, _ := ByName("ncf_py")
	if job.BatchPerGPU != base.Job.BatchPerGPU || job.MaxGlobalBatch != base.Job.MaxGlobalBatch {
		t.Error("empty spec modified the job")
	}
}

func TestJobSpecRemoveBatchCap(t *testing.T) {
	spec := &JobSpec{Base: "ncf_py", MaxGlobalBatch: -1}
	job, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if job.MaxGlobalBatch != 0 {
		t.Error("-1 should remove the cap")
	}
}

func TestJobSpecErrors(t *testing.T) {
	cases := []string{
		`{}`, // no base
		`{"base":"nope"}`,
		`{"base":"res50_tf","precision":"int8"}`,
		`{"base":"res50_tf","overlap_comm":1.5}`,
		`{"base":"res50_tf","allocator":"mmap"}`,
		`{"base":"res50_tf","unknown_field":1}`,
	}
	for _, c := range cases {
		spec, err := ParseJobSpec(strings.NewReader(c))
		if err != nil {
			continue // parse-level rejection is fine too
		}
		if _, err := spec.Build(); err == nil {
			t.Errorf("spec %s accepted", c)
		}
	}
}

func TestJobSpecBadJSON(t *testing.T) {
	if _, err := ParseJobSpec(strings.NewReader(`{`)); err == nil {
		t.Error("truncated JSON accepted")
	}
}
