// Package workload glues models, datasets and calibration into the three
// benchmark suites the paper studies (Table II): the seven GPU-submitted
// MLPerf v0.5 training benchmarks, DAWNBench's two entries, and
// DeepBench's four kernel benchmarks. Reinforcement learning is excluded
// exactly as the paper excludes it (no GPU submission, footnote 1), and so
// is DeepBench's MPI all-reduce (multi-machine).
package workload

import (
	"fmt"
	"sort"
	"strings"

	"mlperf/internal/dataset"
	"mlperf/internal/model"
	"mlperf/internal/precision"
	"mlperf/internal/sim"
	"mlperf/internal/units"
)

// Suite identifies a benchmark suite.
type Suite string

// The three suites.
const (
	MLPerf    Suite = "MLPerf"
	DAWNBench Suite = "DAWNBench"
	DeepBench Suite = "DeepBench"
)

// Benchmark is one Table II entry bound to a runnable simulator job.
type Benchmark struct {
	// Abbrev is the paper's abbreviation (e.g. "MLPf_Res50_TF").
	Abbrev string
	Suite  Suite
	// Domain, ModelName, Framework, Submitter, QualityTarget mirror the
	// Table II columns.
	Domain        string
	ModelName     string
	Framework     string
	Submitter     string
	QualityTarget string
	// Job is the calibrated simulator configuration.
	Job sim.Job
	// RefJob simulates the unoptimized MLPerf *reference implementation*
	// (the code Table IV's 1xP100 column measures); zero-valued for
	// benchmarks with no reference column.
	RefJob sim.Job
}

// registry is built once at init; byName indexes it by every accepted
// spelling so lookups on the sweep hot path are one map probe, not a
// scan. First registration wins on (hypothetical) alias collisions,
// preserving the old first-match scan order.
var (
	registry []Benchmark
	byName   map[string]int
)

func init() {
	registry = buildRegistry()
	byName = make(map[string]int, 4*len(registry))
	for i, b := range registry {
		ab := strings.ToLower(b.Abbrev)
		for _, alias := range []string{
			ab,
			strings.TrimPrefix(ab, "mlpf_"),
			strings.TrimPrefix(ab, "dawn_"),
			strings.TrimPrefix(ab, "deep_"),
		} {
			if _, dup := byName[alias]; !dup {
				byName[alias] = i
			}
		}
	}
}

func buildRegistry() []Benchmark {
	var out []Benchmark

	mk := func(abbrev string, suite Suite, domain, mdl, fw, sub, target string,
		net *model.Network, data dataset.Dataset, c calib) {
		b := Benchmark{
			Abbrev: abbrev, Suite: suite, Domain: domain, ModelName: mdl,
			Framework: fw, Submitter: sub, QualityTarget: target,
			Job: c.job(abbrev, net, data),
		}
		if c.ref.epochs > 0 {
			b.RefJob = c.refJob(abbrev, net, data)
		}
		out = append(out, b)
	}

	mk("MLPf_Res50_TF", MLPerf, "Image Classification", "ResNet-50",
		"TensorFlow", "Google", "Accuracy: 0.749",
		model.ResNet50(), dataset.ImageNet, calibRes50TF)
	mk("MLPf_Res50_MX", MLPerf, "Image Classification", "ResNet-50",
		"MXNet", "NVIDIA", "Accuracy: 0.749",
		model.ResNet50(), dataset.ImageNet, calibRes50MX)
	mk("MLPf_SSD_Py", MLPerf, "Object Detection (light-weight)", "SSD",
		"PyTorch", "NVIDIA", "mAP: 0.212",
		model.SSD300(), dataset.COCO300, calibSSD)
	mk("MLPf_MRCNN_Py", MLPerf, "Object Detection (heavy-weight)", "Mask R-CNN",
		"PyTorch", "NVIDIA", "Box mAP: 0.377, Mask mAP: 0.339",
		model.MaskRCNN(), dataset.COCO, calibMRCNN)
	mk("MLPf_XFMR_Py", MLPerf, "Translation", "Transformer",
		"PyTorch", "NVIDIA", "BLEU: 25",
		model.Transformer(), dataset.WMT17, calibXFMR)
	mk("MLPf_GNMT_Py", MLPerf, "Translation", "RNN GNMT",
		"PyTorch", "NVIDIA", "Sacre BLEU: 21.80",
		model.GNMT(), dataset.WMT17, calibGNMT)
	mk("MLPf_NCF_Py", MLPerf, "Recommendation", "Neural Collaborative Filtering",
		"PyTorch", "NVIDIA", "Hit rate @10: 0.635",
		model.NCF(), dataset.MovieLens20M, calibNCF)

	mk("Dawn_Res18_Py", DAWNBench, "Image Classification", "ResNet-18 (modified)",
		"PyTorch", "bkj", "Test accuracy: 94%",
		model.ResNet18CIFAR(), dataset.CIFAR10, calibRes18)
	mk("Dawn_DrQA_Py", DAWNBench, "Question Answering", "DrQA",
		"PyTorch", "Yang et al.", "F1: 0.75",
		model.DrQA(), dataset.SQuAD, calibDrQA)

	mk("Deep_GEMM_Cu", DeepBench, "Dense Matrix Multiply", "gemm_bench",
		"CUDA", "Baidu/NVIDIA", "n/a",
		model.DeepGEMM(), kernelDataset("gemm sweep"), calibDeepGEMM)
	mk("Deep_Conv_Cu", DeepBench, "Convolution", "conv_bench",
		"CUDA", "Baidu/NVIDIA", "n/a",
		model.DeepConv(), kernelDataset("conv sweep"), calibDeepConv)
	mk("Deep_RNN_Cu", DeepBench, "Recurrent Layers", "rnn_bench",
		"CUDA", "Baidu/NVIDIA", "n/a",
		model.DeepRNN(), kernelDataset("rnn sweep"), calibDeepRNN)
	mk("Deep_Red_Cu", DeepBench, "Communication (AllReduce)", "nccl_single_all_reduce",
		"CUDA", "Baidu/NVIDIA", "n/a",
		model.DeepAllReduce(), kernelDataset("allreduce sweep"), calibDeepRed)

	return out
}

// kernelDataset fabricates the "dataset" of a kernel sweep: iterations of
// the benchmark loop.
func kernelDataset(name string) dataset.Dataset {
	return dataset.Dataset{
		Name:         name,
		TrainSamples: 10000, // benchmark loop iterations
		DiskBytes:    1,
		SampleBytes:  1,
	}
}

// All returns every benchmark the paper studies. The reinforcement
// learning entry the paper excludes is available via Extensions().
func All() []Benchmark { return append([]Benchmark(nil), registry...) }

// Extensions returns benchmarks beyond the paper's study set: currently
// the MLPerf v0.5 reinforcement-learning entry (minigo), which the paper
// excludes for lack of a GPU submission (footnote 1). Its calibration is
// a plausible PyTorch-style profile, not a fit to published numbers — it
// exists so the model zoo covers the full v0.5 suite and so users can ask
// "what if minigo had a GPU submission?".
func Extensions() []Benchmark {
	selfPlay := dataset.Dataset{
		Name:         "self-play positions",
		TrainSamples: 2000000, // positions generated per generation
		DiskBytes:    12 * units.GB,
		SampleBytes:  19 * 19 * 17,
		EvalSamples:  10000,
	}
	c := calib{
		batch: 64, epochs: 1, // one generation of the RL loop
		policy: precision.AMP, eligFrac: 0.9, tensorEff: 0.30, mathEff: 0.70, memEff: 0.85,
		overlap: 0.6,
		// Self-play move generation keeps the host busy (the paper notes
		// the reference "spends more time on the CPU than the GPU").
		cpuSec: 0.02, workers: 8, serialPerEpoch: 120,
		hostBase: 4 * units.GB, hostPerGPU: 2 * units.GB,
		greedy: false, idle: 0.15, optSlots: 1,
	}
	return []Benchmark{{
		Abbrev: "MLPf_MiniGo_RL", Suite: MLPerf,
		Domain: "Reinforcement Learning", ModelName: "MiniGo (AlphaGo-Zero style)",
		Framework: "TensorFlow", Submitter: "reference only",
		QualityTarget: "40 generations / pro-move prediction",
		Job:           c.job("MLPf_MiniGo_RL", model.MiniGo(), selfPlay),
	}}
}

// BySuite returns the benchmarks of one suite.
func BySuite(s Suite) []Benchmark {
	var out []Benchmark
	for _, b := range registry {
		if b.Suite == s {
			out = append(out, b)
		}
	}
	return out
}

// MLPerfSuite returns the seven MLPerf benchmarks.
func MLPerfSuite() []Benchmark { return BySuite(MLPerf) }

// ByName finds a benchmark by abbreviation (case-insensitive; also
// accepts the short form without the suite prefix, e.g. "res50_tf").
func ByName(name string) (Benchmark, error) {
	if i, ok := byName[strings.ToLower(strings.TrimSpace(name))]; ok {
		return registry[i], nil
	}
	return Benchmark{}, fmt.Errorf("workload: unknown benchmark %q (have %s)",
		name, strings.Join(Names(), ", "))
}

// Names returns all abbreviations, sorted.
func Names() []string {
	out := make([]string, len(registry))
	for i, b := range registry {
		out[i] = b.Abbrev
	}
	sort.Strings(out)
	return out
}
