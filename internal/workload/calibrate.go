package workload

import (
	"mlperf/internal/dataset"
	"mlperf/internal/model"
	"mlperf/internal/precision"
	"mlperf/internal/sim"
	"mlperf/internal/units"
)

// calib holds the per-benchmark calibration constants. These stand in for
// everything the paper measured that a layer graph cannot derive — how
// close each submission's kernels come to datasheet peaks, how well its
// backward pass overlaps NCCL, how expensive its host input pipeline is,
// its allocator's appetite, and its large-batch convergence penalty.
// Values were fitted so the simulator reproduces the paper's single-GPU
// V100 training times and the *shape* of the scaling, utilization,
// mixed-precision and interconnect results; EXPERIMENTS.md records the
// residuals. The paper itself stresses (§VI) that "MLPerf benchmark
// characteristics may be heavily influenced by the specific
// implementations" — these constants are exactly that implementation
// fingerprint.
type calib struct {
	// batch is the per-GPU minibatch of the optimized submission.
	batch int
	// maxGlobal caps the global batch (0 = uncapped).
	maxGlobal int
	// epochs to the Table II quality target (fractional epochs allowed;
	// NCF's value folds in its 4x negative sampling).
	epochs float64
	// epochGrowth is the per-doubling epoch inflation at global batches
	// beyond the single-GPU reference.
	epochGrowth float64
	// policy + efficiency of the optimized submission.
	policy    precision.Policy
	eligFrac  float64
	tensorEff float64
	mathEff   float64
	memEff    float64
	// overlap is the fraction of all-reduce hidden under backward.
	overlap float64
	// cpuSec is host preprocessing core-seconds per sample; workers is
	// the loader worker count per GPU (fixedWorkers pins the pool size
	// for single-process samplers).
	cpuSec       float64
	workers      int
	fixedWorkers int
	// serialPerEpoch is non-parallelizable host seconds per epoch.
	serialPerEpoch float64
	// gpuFixedPerStep is batch-independent per-step GPU overhead.
	gpuFixedPerStep float64
	// imbalance is the straggler inflation at multi-GPU sync points.
	imbalance float64
	// hostBase / hostPerGPU shape the DRAM footprint.
	hostBase   units.Bytes
	hostPerGPU units.Bytes
	// greedy marks allocator-greedy frameworks (preallocate ~97% HBM).
	greedy bool
	// idle is the kernel-gap inflation of compute time.
	idle float64
	// optSlots is optimizer state words per parameter.
	optSlots int
	// h2dBytes overrides the per-sample host-to-device payload.
	h2dBytes units.Bytes
	// actLive is the live fraction of activation memory (0 = all).
	actLive float64
	// commViaHost stages collectives through host memory (TF replicated
	// variables) instead of NCCL P2P.
	commViaHost bool
	// ref describes the unoptimized reference implementation measured on
	// the P100 reference machine (Table IV column 1).
	ref refCalib
}

// refCalib is the reference-implementation fingerprint: FP32, poorer
// kernels, poorer input pipeline.
type refCalib struct {
	epochs  float64
	batch   int
	mathEff float64
	memEff  float64
	cpuSec  float64
	workers int
	overlap float64
	idle    float64
	fixed   float64 // per-step GPU overhead
}

// job builds the optimized-submission simulator job.
func (c calib) job(name string, net *model.Network, data dataset.Dataset) sim.Job {
	cfg := precision.Config{
		Policy:       c.policy,
		EligibleFrac: c.eligFrac,
		TensorEff:    c.tensorEff,
		MathEff:      c.mathEff,
		MemEff:       c.memEff,
	}
	return sim.Job{
		Name:                 name,
		Net:                  net,
		Data:                 data,
		EpochsToTarget:       c.epochs,
		EpochGrowthPerDouble: c.epochGrowth,
		BatchPerGPU:          c.batch,
		MaxGlobalBatch:       c.maxGlobal,
		Precision:            cfg,
		OptimizerSlots:       c.optSlots,
		OverlapComm:          c.overlap,
		CPUSecondsPerSample:  c.cpuSec,
		InputWorkersPerGPU:   c.workers,
		FixedInputWorkers:    c.fixedWorkers,
		HostSerialPerEpoch:   c.serialPerEpoch,
		GPUFixedPerStep:      c.gpuFixedPerStep,
		Imbalance:            c.imbalance,
		HostBaseBytes:        c.hostBase,
		HostBytesPerGPU:      c.hostPerGPU,
		GreedyHBM:            c.greedy,
		GPUIdleFrac:          c.idle,
		H2DBytesPerSample:    c.h2dBytes,
		ActLiveFrac:          c.actLive,
		CommViaHost:          c.commViaHost,
	}
}

// refJob builds the reference-implementation job (FP32 only).
func (c calib) refJob(name string, net *model.Network, data dataset.Dataset) sim.Job {
	r := c.ref
	return sim.Job{
		Name:                name + " (reference)",
		Net:                 net,
		Data:                data,
		EpochsToTarget:      r.epochs,
		BatchPerGPU:         r.batch,
		MaxGlobalBatch:      c.maxGlobal,
		Precision:           precision.Config{Policy: precision.FP32, MathEff: r.mathEff, TensorEff: 0.5, MemEff: r.memEff},
		OptimizerSlots:      c.optSlots,
		OverlapComm:         r.overlap,
		CPUSecondsPerSample: r.cpuSec,
		InputWorkersPerGPU:  r.workers,
		HostSerialPerEpoch:  c.serialPerEpoch,
		GPUFixedPerStep:     r.fixed,
		HostBaseBytes:       c.hostBase,
		HostBytesPerGPU:     c.hostPerGPU,
		GPUIdleFrac:         r.idle,
	}
}

// ---- MLPerf ----

var calibRes50TF = calib{
	batch: 256, epochs: 61, epochGrowth: 0.02,
	policy: precision.AMP, eligFrac: 0.97, tensorEff: 0.72, mathEff: 0.84, memEff: 0.98,
	overlap: 0.60,
	cpuSec:  0.0034, workers: 6, serialPerEpoch: 2,
	hostBase: 17.2 * units.GB, hostPerGPU: 0.7 * units.GB,
	greedy: true, idle: 0.16, optSlots: 1,
	ref: refCalib{epochs: 61, batch: 64, mathEff: 0.47, memEff: 0.70,
		cpuSec: 0.006, workers: 8, overlap: 0.3, idle: 0.08},
}

var calibRes50MX = calib{
	batch: 256, epochs: 61, epochGrowth: 0.05,
	policy: precision.AMP, eligFrac: 0.97, tensorEff: 0.81, mathEff: 0.92, memEff: 0.98,
	overlap: 0.30, // coarser gradient bucketing than the TF submission
	cpuSec:  0.0015, workers: 5, serialPerEpoch: 2,
	hostBase: 0.1 * units.GB, hostPerGPU: 7.0 * units.GB,
	greedy: false, idle: 0.16, optSlots: 1, actLive: 0.46,
	ref: refCalib{epochs: 61, batch: 64, mathEff: 0.45, memEff: 0.70,
		cpuSec: 0.006, workers: 8, overlap: 0.3, idle: 0.08},
}

var calibSSD = calib{
	batch: 128, epochs: 22, epochGrowth: 0.01,
	policy: precision.AMP, eligFrac: 0.95, tensorEff: 0.21, mathEff: 0.70, memEff: 0.95,
	overlap: 0.85,
	cpuSec:  0.0062, workers: 5, serialPerEpoch: 2,
	hostBase: 0.5 * units.GB, hostPerGPU: 4.8 * units.GB,
	greedy: true, idle: 0.04, optSlots: 1,
	ref: refCalib{epochs: 22, batch: 32, mathEff: 0.55, memEff: 0.70,
		cpuSec: 0.006, workers: 8, overlap: 0.3, idle: 0.05},
}

var calibMRCNN = calib{
	batch: 2, epochs: 8,
	policy: precision.AMP, eligFrac: 0.60, tensorEff: 0.32, mathEff: 0.70, memEff: 0.80,
	overlap: 0.0, imbalance: 0.30,
	cpuSec: 0.14, workers: 4, serialPerEpoch: 30,
	hostBase: 1.0 * units.GB, hostPerGPU: 6.0 * units.GB,
	greedy: false, idle: 0.15, optSlots: 1, actLive: 0.60,
	ref: refCalib{epochs: 8, batch: 2, mathEff: 0.70, memEff: 0.70,
		cpuSec: 0.20, workers: 4, overlap: 0.3, idle: 0.15},
}

var calibXFMR = calib{
	batch: 192, epochs: 3.3, epochGrowth: 0.12,
	policy: precision.AMP, eligFrac: 0.90, tensorEff: 0.165, mathEff: 0.40, memEff: 0.85,
	overlap: 0.62,
	cpuSec:  0.0015, workers: 4, serialPerEpoch: 20,
	hostBase: 0.6 * units.GB, hostPerGPU: 3.4 * units.GB,
	greedy: true, idle: 0.10, optSlots: 2, // Adam
	ref: refCalib{epochs: 3.3, batch: 64, mathEff: 0.56, memEff: 0.70,
		cpuSec: 0.003, workers: 4, overlap: 0.3, idle: 0.10},
}

var calibGNMT = calib{
	batch: 128, epochs: 4, epochGrowth: 0.08,
	policy: precision.AMP, eligFrac: 0.85, tensorEff: 0.125, mathEff: 0.35, memEff: 0.80,
	overlap: 0.10,
	cpuSec:  0.0017, workers: 4, serialPerEpoch: 20,
	hostBase: 1.0 * units.GB, hostPerGPU: 6.0 * units.GB,
	greedy: true, idle: 0.11, optSlots: 2, h2dBytes: 860 * units.KB, // Adam
	ref: refCalib{epochs: 4, batch: 64, mathEff: 0.45, memEff: 0.65,
		cpuSec: 0.008, workers: 4, overlap: 0.3, idle: 0.15},
}

var calibNCF = calib{
	batch: 1 << 20, maxGlobal: 1 << 21, epochs: 1.05, // quality hit within ~1 pass
	policy: precision.AMP, eligFrac: 0.80, tensorEff: 0.0034, mathEff: 0.0114, memEff: 0.60,
	overlap: 0.30,
	cpuSec:  2.1e-6, fixedWorkers: 4, workers: 2,
	serialPerEpoch: 8.3, gpuFixedPerStep: 4.85,
	hostBase: 0.2 * units.GB, hostPerGPU: 1.4 * units.GB,
	greedy: true, idle: 0.0, optSlots: 2, // Adam
	ref: refCalib{epochs: 1.05, batch: 1 << 18, mathEff: 0.00065, memEff: 0.25,
		cpuSec: 4e-6, workers: 2, overlap: 0.2, idle: 0.2, fixed: 1.5},
}

// ---- DAWNBench ----

var calibRes18 = calib{
	batch: 512, epochs: 35,
	policy: precision.AMP, eligFrac: 0.90, tensorEff: 0.25, mathEff: 0.60, memEff: 0.70,
	overlap: 0.7,
	cpuSec:  0.00035, workers: 4, serialPerEpoch: 0.5,
	hostBase: 2.2 * units.GB, hostPerGPU: 0.5 * units.GB,
	greedy: false, idle: 0.25, optSlots: 1,
}

var calibDrQA = calib{
	batch: 32, epochs: 30,
	policy: precision.FP32, eligFrac: 0, tensorEff: 0.5, mathEff: 0.14, memEff: 0.60,
	overlap: 0.5,
	// The paper's standout observation (§V-A): DrQA keeps ~20 host cores
	// busy and the GPU only ~20% utilized — preprocessing dominates.
	cpuSec: 0.22, workers: 20, serialPerEpoch: 10,
	hostBase: 6.2 * units.GB, hostPerGPU: 0.5 * units.GB,
	greedy: false, idle: 0.05, optSlots: 2,
}

// ---- DeepBench (single-kernel benchmarks) ----

var calibDeepGEMM = calib{
	batch: 1, epochs: 1,
	policy: precision.FP32, tensorEff: 0.5, mathEff: 0.85, memEff: 0.85,
	overlap: 0, cpuSec: 0.003, workers: 1,
	hostBase: 0.3 * units.GB, hostPerGPU: 0.05 * units.GB,
	greedy: false, idle: 0.0, optSlots: 0,
}

var calibDeepConv = calib{
	batch: 1, epochs: 1,
	policy: precision.FP32, tensorEff: 0.5, mathEff: 0.80, memEff: 0.85,
	overlap: 0, cpuSec: 0.0008, workers: 1,
	hostBase: 0.9 * units.GB, hostPerGPU: 0.05 * units.GB,
	greedy: false, idle: 0.0, optSlots: 0,
}

var calibDeepRNN = calib{
	batch: 16, epochs: 1,
	policy: precision.FP32, tensorEff: 0.5, mathEff: 0.55, memEff: 0.80,
	overlap: 0, cpuSec: 0.004, workers: 1, h2dBytes: 3.5 * units.MB,
	hostBase: 0.9 * units.GB, hostPerGPU: 0.1 * units.GB,
	greedy: false, idle: 0.05, optSlots: 0,
}

var calibDeepRed = calib{
	batch: 1, epochs: 1,
	policy: precision.FP32, tensorEff: 0.5, mathEff: 0.5, memEff: 0.85,
	overlap: 0, // pure collective: fully exposed by construction
	cpuSec:  1e-6, workers: 1,
	hostBase: 0.3 * units.GB, hostPerGPU: 0.2 * units.GB,
	greedy: false, idle: 0.0, optSlots: 0,
}
