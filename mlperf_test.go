// Integration tests at the facade level: each test asserts one of the
// paper's key insights (Table I) holds in the reproduction, plus
// tolerance checks of the headline Table IV numbers.
package mlperf

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"mlperf/internal/dataset"
	"mlperf/internal/workload"
)

func TestFacadeSmoke(t *testing.T) {
	if len(Systems()) != 6 {
		t.Errorf("%d systems, want 6", len(Systems()))
	}
	if len(Benchmarks()) != 13 {
		t.Errorf("%d benchmarks, want 13", len(Benchmarks()))
	}
	if len(MLPerfBenchmarks()) != 7 {
		t.Errorf("%d MLPerf benchmarks, want 7", len(MLPerfBenchmarks()))
	}
	sys, err := SystemByName("c4140k")
	if err != nil {
		t.Fatal(err)
	}
	b, err := BenchmarkByName("res50_tf")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(sys, 4, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.TimeToTrain <= 0 {
		t.Error("degenerate simulation")
	}
}

// TestInsightScalingDiversity (Table I rows 4+5): benchmarks scale
// differently; NCF saturates while image classification stays near-linear.
func TestInsightScalingDiversity(t *testing.T) {
	rows, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ScalingRow{}
	for _, r := range rows {
		byName[r.Bench] = r
	}
	ncf := byName["MLPf_NCF_Py"]
	res50 := byName["MLPf_Res50_TF"]
	ssd := byName["MLPf_SSD_Py"]
	if ncf.S8 >= 3 {
		t.Errorf("NCF 1-to-8 = %.2f, paper shows saturation near 2.3", ncf.S8)
	}
	if res50.S8 < 6 || ssd.S8 < 6 {
		t.Errorf("image/detection 1-to-8 = %.2f/%.2f, paper shows ~7", res50.S8, ssd.S8)
	}
	if ncf.S8 >= res50.S8 {
		t.Error("NCF must scale worse than ResNet-50")
	}
	// NCF has the highest P-to-V jump (21x in the paper): optimized
	// submissions vs reference code.
	for name, r := range byName {
		if name != "MLPf_NCF_Py" && r.PtoV >= ncf.PtoV {
			t.Errorf("%s P-to-V %.2f >= NCF's %.2f", name, r.PtoV, ncf.PtoV)
		}
	}
}

// TestTable4Tolerance: headline cells within a documented tolerance band.
func TestTable4Tolerance(t *testing.T) {
	rows, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	paper := map[string]workload.PaperScaling{}
	for _, p := range workload.TableIV {
		paper[p.Bench] = p
	}
	within := func(got, want, tol float64) bool {
		return math.Abs(got-want) <= tol*want
	}
	for _, r := range rows {
		p := paper[r.Bench]
		if !within(r.V100Min, p.V100Min, 0.15) {
			t.Errorf("%s: 1xV100 %.0f min vs paper %.0f (tol 15%%)", r.Bench, r.V100Min, p.V100Min)
		}
		if !within(r.P100Min, p.P100Min, 0.15) {
			t.Errorf("%s: 1xP100 %.0f min vs paper %.0f (tol 15%%)", r.Bench, r.P100Min, p.P100Min)
		}
		if !within(r.S2, p.S2, 0.25) || !within(r.S4, p.S4, 0.25) || !within(r.S8, p.S8, 0.30) {
			t.Errorf("%s: scaling %.2f/%.2f/%.2f vs paper %.2f/%.2f/%.2f",
				r.Bench, r.S2, r.S4, r.S8, p.S2, p.S4, p.S8)
		}
	}
}

// TestInsightMixedPrecision (Table I row 6): tensor cores earn significant
// speedup; endpoints are ResNet-50-TF (highest) and Mask R-CNN (lowest).
func TestInsightMixedPrecision(t *testing.T) {
	rows, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	var res50, mrcnn, min, max float64
	min, max = 100, 0
	for _, r := range rows {
		if r.Speedup <= 1 {
			t.Errorf("%s: AMP speedup %.2f <= 1", r.Bench, r.Speedup)
		}
		if r.Bench == "MLPf_Res50_TF" {
			res50 = r.Speedup
		}
		if r.Bench == "MLPf_MRCNN_Py" {
			mrcnn = r.Speedup
		}
		min = math.Min(min, r.Speedup)
		max = math.Max(max, r.Speedup)
	}
	if math.Abs(res50-3.3) > 0.4 {
		t.Errorf("Res50_TF AMP speedup %.2f, paper reports 3.3", res50)
	}
	if math.Abs(mrcnn-1.5) > 0.3 {
		t.Errorf("MRCNN AMP speedup %.2f, paper reports 1.5", mrcnn)
	}
	if max != res50 {
		t.Errorf("highest speedup %.2f is not Res50_TF's %.2f", max, res50)
	}
}

// TestInsightTopology (Table I last row): NVLink systems beat the PCIe
// switch, which beats through-CPU attachments, for every MLPerf benchmark.
func TestInsightTopology(t *testing.T) {
	rows, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		nv := math.Min(r.Minutes["C4140 (K)"], r.Minutes["C4140 (M)"])
		sw := r.Minutes["C4140 (B)"]
		cpu := math.Max(r.Minutes["T640"], r.Minutes["R940 XA"])
		if !(nv <= sw+1e-9 && sw <= cpu+1e-9) {
			t.Errorf("%s: ordering violated nv=%.1f sw=%.1f cpu=%.1f", r.Bench, nv, sw, cpu)
		}
	}
	// The communication-heavy translation models gain the most; image
	// classification gains the least (11% in the paper).
	gains := map[string]float64{}
	for _, r := range rows {
		gains[r.Bench] = r.NVLinkGain
	}
	if gains["MLPf_GNMT_Py"] <= gains["MLPf_Res50_TF"] {
		t.Error("GNMT must gain more from NVLink than ResNet-50")
	}
	if g := gains["MLPf_Res50_TF"]; g < 0.05 || g > 0.20 {
		t.Errorf("Res50 NVLink gain %.0f%%, paper reports 11%%", g*100)
	}
}

// TestInsightScheduling (Table I row 4): the optimal schedule saves hours
// over naive on 4 GPUs, and the saving shrinks as GPUs grow.
func TestInsightScheduling(t *testing.T) {
	r4, err := Fig4(4)
	if err != nil {
		t.Fatal(err)
	}
	if r4.SavedHours < 1 {
		t.Errorf("4-GPU saving %.1f h, paper reports ~3", r4.SavedHours)
	}
	if err := r4.Optimal.Validate(r4.Jobs, 4); err != nil {
		t.Errorf("optimal schedule infeasible: %v", err)
	}
	r2, err := Fig4(2)
	if err != nil {
		t.Fatal(err)
	}
	if r2.SavedHours <= r4.SavedHours {
		t.Error("2-GPU saving should exceed 4-GPU saving (paper: 4.1 vs 3.0)")
	}
}

// TestInsightPCA (Table I rows 1-3): MLPerf forms a cluster disjoint from
// DAWNBench+DeepBench on PC1, and PC1-PC4 carry most of the variance.
func TestInsightPCA(t *testing.T) {
	r, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's extreme-point disjointness does not fully reproduce
	// (our simulated NCF/MRCNN profiles sit near the kernel suites; see
	// EXPERIMENTS.md), but the suites must still separate on centroids
	// and MLPerf must stay internally diverse.
	if sep := r.CentroidSeparationPC1(); sep < 0.8 {
		t.Errorf("PC1 centroid separation = %.3f, want MLPerf clearly apart", sep)
	}
	if d := r.MinIntraMLPerfDistance(); d < 0.3 {
		t.Errorf("min intra-MLPerf distance = %.3f, paper shows no two close", d)
	}
	cum := r.PCA.CumulativeVariance()
	if cum[3] < 0.75 {
		t.Errorf("PC1-4 cover %.0f%% variance, paper reports 88%%", cum[3]*100)
	}
	if _, name := r.PCA.DominantFeature(0); name == "" {
		t.Error("PC1 dominant feature unnamed")
	}
}

// TestInsightRoofline (Table I row 5): every profiled workload is
// memory-bound on the V100 — none crosses the ridge.
func TestInsightRoofline(t *testing.T) {
	r, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if !r.AllMemoryBound() {
		t.Error("a workload crossed the roofline ridge; paper reports all memory-bound")
	}
	if len(r.Points) != 13 {
		t.Errorf("%d roofline points, want 13", len(r.Points))
	}
}

// TestRealNCFTimeToQuality runs the actual trainer through the facade.
func TestRealNCFTimeToQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ratings := dataset.SyntheticRatings(rng, 40, 80, 10, 6)
	sp := dataset.LeaveOneOut(ratings)
	m, err := NewNCF(DefaultNCFConfig(40, 80))
	if err != nil {
		t.Fatal(err)
	}
	res, err := TrainNCFToTarget(m, sp, 0.5, 25)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Errorf("hit-rate target not reached: %.3f after %d epochs", res.HitRate, res.Epochs)
	}
}

// TestSchedulingFacade exercises the scheduler through the facade API.
func TestSchedulingFacade(t *testing.T) {
	jobs := []SchedJob{
		{Name: "a", Duration: map[int]float64{1: 100, 2: 55}},
		{Name: "b", Duration: map[int]float64{1: 100, 2: 95}},
	}
	naive, err := ScheduleNaive(jobs, 2)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := ScheduleOptimal(jobs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Makespan > naive.Makespan {
		t.Error("optimal worse than naive")
	}
	if g := RenderGantt(opt, 2, 40); g == "" {
		t.Error("empty gantt")
	}
}

func TestRooflineFacade(t *testing.T) {
	r := V100Roofline()
	if r.Ridge("") <= 0 {
		t.Error("V100 roofline has no ridge")
	}
}

// TestFaultFacade exercises fault injection and the hardened sweep
// through the public API.
func TestFaultFacade(t *testing.T) {
	sys, err := SystemByName("c4140k")
	if err != nil {
		t.Fatal(err)
	}
	b, err := BenchmarkByName("gnmt_py")
	if err != nil {
		t.Fatal(err)
	}
	base, err := Simulate(sys, 4, b)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ParseFaultPlan(`{"Seed":5,"Stragglers":[{"Lane":"gpu","Factor":2}],"Checkpoint":{"Interval":120,"ReplayFrac":1}}`)
	if err != nil {
		t.Fatal(err)
	}
	var log SimEventLog
	res, err := SimulateWithFaults(sys, 4, b, plan, &log)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults == nil || res.Faults.Activations == 0 {
		t.Fatalf("fault report empty: %+v", res.Faults)
	}
	if res.TimeToTrain <= base.TimeToTrain {
		t.Errorf("faulted TTT %v not above fault-free %v", res.TimeToTrain, base.TimeToTrain)
	}
	if len(log.Events) == 0 {
		t.Error("no events observed through the facade")
	}

	recs, report, err := SweepWithOptions(context.Background(), SweepGrid{
		Benchmarks: []string{"res50_tf"},
		GPUCounts:  []int{1, 2},
	}, SweepOptions{Retries: 1, CellTimeout: time.Minute, Partial: true})
	if err != nil {
		t.Fatal(err)
	}
	if report.Failed() || len(recs) != 2 {
		t.Fatalf("hardened sweep: %d records, report %+v", len(recs), report)
	}
}
