// Quickstart: simulate training MLPerf's ResNet-50 benchmark on the
// 8-GPU DSS 8440 and print the numbers the paper's Table IV reports —
// time-to-train and multi-GPU speedup.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mlperf"
)

func main() {
	sys, err := mlperf.SystemByName("dss8440")
	if err != nil {
		log.Fatal(err)
	}
	bench, err := mlperf.BenchmarkByName("MLPf_Res50_TF")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s (%s, submitted by %s) on %s\n\n",
		bench.Abbrev, bench.ModelName, bench.Submitter, sys.Name)
	fmt.Printf("quality target: %s, dataset: %s\n\n", bench.QualityTarget, bench.Job.Data.Name)

	var base float64
	for _, gpus := range []int{1, 2, 4, 8} {
		res, err := mlperf.Simulate(sys, gpus, bench)
		if err != nil {
			log.Fatal(err)
		}
		min := res.TimeToTrain.Minutes()
		if gpus == 1 {
			base = min
		}
		fmt.Printf("%d GPU(s): time-to-train %7.1f min  (speedup %.2fx, step %.1f ms, "+
			"%.0f samples/s, GPU util %v)\n",
			gpus, min, base/min, res.StepTime*1e3, res.Throughput, res.GPUUtilTotal)
	}

	fmt.Println("\nwhere a training step goes (8 GPUs):")
	res, err := mlperf.Simulate(sys, 8, bench)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  input pipeline : %6.2f ms (host CPUs)\n", res.Input*1e3)
	fmt.Printf("  host-to-device : %6.2f ms (PCIe)\n", res.H2D*1e3)
	fmt.Printf("  fwd+bwd compute: %6.2f ms\n", res.Compute*1e3)
	fmt.Printf("  all-reduce     : %6.2f ms (%.2f ms exposed after overlap)\n",
		res.AllReduce*1e3, res.ExposedComm*1e3)
	fmt.Printf("  optimizer      : %6.2f ms\n", res.Optimizer*1e3)
}
