// Topology: the paper's Figure 5 scenario — you are buying a 4-GPU server
// for distributed training; how much does the GPU interconnect matter?
// Compares all five 4-GPU platforms of Table III for a communication-light
// workload (ResNet-50) and a communication-heavy one (GNMT), and shows
// the interconnect facts behind the difference.
//
//	go run ./examples/topology
package main

import (
	"fmt"
	"log"

	"mlperf"
)

func main() {
	systems := []string{"c4140m", "c4140k", "c4140b", "t640", "r940xa"}

	for _, benchName := range []string{"MLPf_Res50_TF", "MLPf_GNMT_Py"} {
		bench, err := mlperf.BenchmarkByName(benchName)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (gradient volume per step: %v)\n",
			bench.Abbrev, bench.Job.Net.GradientBytes())
		fmt.Printf("  %-12s %-12s %14s %14s %12s\n",
			"system", "interconnect", "time-to-train", "all-reduce", "exposed")
		var worst, best float64
		for _, name := range systems {
			sys, err := mlperf.SystemByName(name)
			if err != nil {
				log.Fatal(err)
			}
			res, err := mlperf.Simulate(sys, 4, bench)
			if err != nil {
				log.Fatal(err)
			}
			min := res.TimeToTrain.Minutes()
			if best == 0 || min < best {
				best = min
			}
			if min > worst {
				worst = min
			}
			fmt.Printf("  %-12s %-12s %11.0f min %11.1f ms %9.1f ms\n",
				sys.Name, sys.Interconnect, min, res.AllReduce*1e3, res.ExposedComm*1e3)
		}
		fmt.Printf("  => NVLink saves %.0f%% over the worst PCIe attachment\n\n",
			(worst-best)/worst*100)
	}

	// The hardware facts underneath: pairwise GPU bandwidth per topology.
	fmt.Println("pairwise GPU0<->GPU1 bandwidth and peer-to-peer capability:")
	for _, name := range systems {
		sys, err := mlperf.SystemByName(name)
		if err != nil {
			log.Fatal(err)
		}
		bw := sys.Topo.GPUPairBandwidth("gpu0", "gpu1")
		p2p := sys.Topo.CanP2P("gpu0", "gpu1")
		cross := sys.Topo.GPUPairBandwidth("gpu0", "gpu3")
		fmt.Printf("  %-12s neighbor %8.1f GB/s (P2P %-5v)  far pair %8.1f GB/s\n",
			sys.Name, bw.GBs(), p2p, cross.GBs())
	}
}
