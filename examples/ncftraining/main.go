// NCF training: MLPerf's defining metric — time to a quality target —
// executed for real. Trains the NeuMF recommender on a synthetic
// MovieLens-like corpus until hit-rate@10 clears a target, then serves
// recommendations, all on the host CPU in seconds.
//
//	go run ./examples/ncftraining
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mlperf"
	"mlperf/internal/dataset"
)

func main() {
	const (
		users, items = 80, 200
		target       = 0.60
	)
	rng := rand.New(rand.NewSource(42))
	fmt.Printf("generating synthetic MovieLens-like corpus: %d users x %d items\n", users, items)
	ratings := dataset.SyntheticRatings(rng, users, items, 14, 6)
	split := dataset.LeaveOneOut(ratings)
	fmt.Printf("  %d train interactions, %d held-out (leave-one-out)\n\n",
		len(split.Train), len(split.Test))

	model, err := mlperf.NewNCF(mlperf.DefaultNCFConfig(users, items))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("training to hit-rate@10 >= %.2f (the MLPerf NCF protocol; "+
		"the real benchmark's target is 0.635 on MovieLens-20M)\n", target)
	res, err := mlperf.TrainNCFToTarget(model, split, target, 40)
	if err != nil {
		log.Fatal(err)
	}
	for i, hr := range res.HitRateByEpoch {
		fmt.Printf("  epoch %2d: hit-rate@10 = %.3f\n", i+1, hr)
	}
	if res.Reached {
		fmt.Printf("\ntarget reached after %d epochs — time to quality: %v\n",
			res.Epochs, res.Elapsed.Round(1e6))
	} else {
		fmt.Printf("\ntarget NOT reached (%.3f after %d epochs)\n", res.HitRate, res.Epochs)
	}

	// Serve: top-5 recommendations for one user, excluding the training
	// interactions.
	user := int32(3)
	seen := map[int32]bool{}
	for _, r := range split.Train {
		if r.User == user {
			seen[r.Item] = true
		}
	}
	fmt.Printf("\ntop-5 recommendations for user %d: ", user)
	for _, it := range mlperf.TopKRecommendations(model, user, 5, seen) {
		fmt.Printf("%d ", it)
	}
	fmt.Println()
}
