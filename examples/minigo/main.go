// MiniGo: the reinforcement-learning benchmark the paper excludes
// (footnote 1), executed for real at reduced scale. MCTS self-play
// generates games on a small board, a policy network behavior-clones the
// searched moves, and the loop stops when the policy beats a random
// player — the minigo time-to-quality protocol in miniature. Also
// simulates what the full-scale benchmark would cost on a DGX-1.
//
//	go run ./examples/minigo
package main

import (
	"fmt"
	"log"

	"mlperf"
)

func main() {
	fmt.Println("== real self-play loop (4x4 board) ==")
	res, err := mlperf.TrainMiniGoToWinRate(4 /*board*/, 4 /*games/gen*/, 40 /*playouts*/, 0.7, 6, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("self-play games        : %d (%d training positions)\n", res.Games, res.Examples)
	fmt.Printf("final win rate vs random: %.2f (target 0.70, reached=%v)\n", res.WinRate, res.Reached)
	fmt.Printf("time to quality        : %v\n\n", res.Elapsed.Round(1e6))

	// And a taste of the engine itself: MCTS picks the winning capture.
	b := mlperf.NewGoBoard(4)
	for _, mv := range []int{1, 2, 5, 6, 9, 10, 13, 14, 0, 4} {
		if err := b.Play(mv); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("== tactical position (Black to move; White intruder in atari) ==")
	fmt.Print(b)
	m := mlperf.NewGoMCTS(2000, -0.5, 3)
	mv, _ := m.BestMove(b)
	fmt.Printf("MCTS plays %d (the capture)\n\n", mv)

	// What would the full-scale benchmark cost? Simulate the MiniGo
	// network's training phase on NVIDIA's DGX-1.
	fmt.Println("== simulated full-scale MiniGo on a DGX-1 ==")
	dgx, err := mlperf.SystemByName("dgx1")
	if err != nil {
		log.Fatal(err)
	}
	for _, ext := range mlperf.ExtensionBenchmarks() {
		sim, err := mlperf.Simulate(dgx, 8, ext)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: one generation on 8x V100 = %.1f min (GPU util %v, CPU util %v)\n",
			ext.Abbrev, sim.TimeToTrain.Minutes(), sim.GPUUtilTotal, sim.CPUUtil)
	}
}
