// Scheduling: the paper's Figure 4 scenario as a library user would run
// it — you administer a 4-GPU machine and seven teams each want to train
// one MLPerf model. Should you run the jobs one-by-one across all GPUs,
// or carve the machine up?
//
//	go run ./examples/scheduling
package main

import (
	"fmt"
	"log"

	"mlperf"
)

func main() {
	sys, err := mlperf.SystemByName("dss8440")
	if err != nil {
		log.Fatal(err)
	}
	const gpus = 4

	// Build the moldable-job durations by simulating every benchmark at
	// every width it could be given.
	var jobs []mlperf.SchedJob
	fmt.Println("simulated training hours by GPU allocation:")
	fmt.Printf("%-16s %8s %8s %8s\n", "job", "1 GPU", "2 GPUs", "4 GPUs")
	for _, b := range mlperf.MLPerfBenchmarks() {
		j := mlperf.SchedJob{Name: b.Abbrev, Duration: map[int]float64{}}
		for _, w := range []int{1, 2, 4} {
			res, err := mlperf.Simulate(sys, w, b)
			if err != nil {
				log.Fatal(err)
			}
			j.Duration[w] = res.TimeToTrain.Seconds()
		}
		fmt.Printf("%-16s %8.1f %8.1f %8.1f\n", j.Name,
			j.Duration[1]/3600, j.Duration[2]/3600, j.Duration[4]/3600)
		jobs = append(jobs, j)
	}

	naive, err := mlperf.ScheduleNaive(jobs, gpus)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := mlperf.ScheduleOptimal(jobs, gpus)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n(a) naive: every job distributed across all 4 GPUs, sequentially")
	fmt.Print(mlperf.RenderGantt(naive, gpus, 64))
	fmt.Println("\n(b) optimal: scalable jobs get the machine, poor scalers share it")
	fmt.Print(mlperf.RenderGantt(opt, gpus, 64))

	fmt.Printf("\nthe optimal plan finishes %.1f hours earlier — with zero new hardware\n",
		(naive.Makespan-opt.Makespan)/3600)
	fmt.Println("(the paper reports ~3.0 h for this mix on 4 GPUs, §IV-D)")
}
