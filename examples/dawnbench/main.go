// DAWNBench protocol, executed for real: train an image classifier to a
// test-accuracy target on a synthetic CIFAR-like task and report the time
// to accuracy — the metric DAWNBench ranks submissions by (Table II:
// Dawn_Res18_Py trains to 94% on CIFAR10).
//
//	go run ./examples/dawnbench
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mlperf"
)

func main() {
	const (
		classes  = 5
		perClass = 80
		dim      = 48
		target   = 0.92
	)
	rng := rand.New(rand.NewSource(7))
	fmt.Printf("generating synthetic image task: %d classes x %d samples, %d features\n",
		classes, perClass, dim)
	xs, ys := mlperf.SyntheticImages(rng, classes, perClass, dim, 0.45)

	// 80/20 split.
	idx := rng.Perm(len(xs))
	var trainX, testX [][]float64
	var trainY, testY []int
	for i, j := range idx {
		if i%5 == 0 {
			testX = append(testX, xs[j])
			testY = append(testY, ys[j])
		} else {
			trainX = append(trainX, xs[j])
			trainY = append(trainY, ys[j])
		}
	}
	fmt.Printf("  %d train / %d test samples\n\n", len(trainX), len(testX))

	clf, err := mlperf.NewClassifier(rng, dim, []int{32, 16}, classes, 0.015, 0.8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training MLP (%d-32-16-%d) to test accuracy >= %.0f%%\n", dim, classes, target*100)
	res, err := mlperf.TrainClassifierToAccuracy(clf, trainX, trainY, testX, testY, target, 40, 11)
	if err != nil {
		log.Fatal(err)
	}
	for i, acc := range res.AccuracyByEpoch {
		fmt.Printf("  epoch %2d: accuracy %.3f\n", i+1, acc)
	}
	if res.Reached {
		fmt.Printf("\ntarget reached after %d epochs — time to accuracy: %v\n",
			res.Epochs, res.Elapsed.Round(1e6))
	} else {
		fmt.Printf("\ntarget NOT reached (%.3f after %d epochs)\n", res.Accuracy, res.Epochs)
	}
}
